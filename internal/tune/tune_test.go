package tune

import (
	"testing"
	"time"
)

// drive feeds the controller a synthetic load: frames at the given
// per-second message rate and messages-per-frame, over the given duration,
// advancing a virtual clock — the control law sees only the timestamps it is
// handed, so tests are fully deterministic.
func drive(c *Controller, start time.Time, dur time.Duration, msgsPerSec float64, perFrame int, hold time.Duration) time.Time {
	if perFrame <= 0 {
		perFrame = 1
	}
	framesPerSec := msgsPerSec / float64(perFrame)
	if framesPerSec <= 0 {
		// No traffic: just let time pass (Observe is never called, like a
		// truly idle batcher).
		return start.Add(dur)
	}
	gap := time.Duration(float64(time.Second) / framesPerSec)
	end := start.Add(dur)
	for now := start; now.Before(end); now = now.Add(gap) {
		c.Observe(now, perFrame, hold)
	}
	return end
}

func TestWindowStartsAtLatencyFloor(t *testing.T) {
	c := New(Config{})
	if w := c.Window(); w != 0 {
		t.Fatalf("initial window = %v, want 0 (flush immediately until load appears)", w)
	}
}

func TestUnderCoalescedLoadGrowsWindow(t *testing.T) {
	c := New(Config{})
	start := time.Unix(1000, 0)
	// 50k msgs/s at 2 messages per frame: loaded, coalescing responds to the
	// hold (pairs share a frame), but frames carry far less than the target.
	// The controller should grow the window additively.
	drive(c, start, 200*time.Millisecond, 50_000, 2, 0)
	if w := c.Window(); w <= 0 {
		t.Fatalf("window = %v after sustained under-coalesced load, want > 0", w)
	}
	if w := c.Window(); w > DefaultMaxWindow {
		t.Fatalf("window = %v exceeds the %v ceiling", w, DefaultMaxWindow)
	}
}

func TestFailedProbeCollapsesWindow(t *testing.T) {
	c := New(Config{})
	start := time.Unix(1000, 0)
	// 50k msgs/s but stuck at 1 message per frame even with the window open:
	// the arrivals serialize behind the held frames (a closed-loop client),
	// so holding cannot improve coalescing. The controller may probe — one
	// additive step — but must collapse each failed probe back to zero,
	// never ratcheting toward MaxWindow.
	step := DefaultMaxWindow / 16
	for i := 0; i < 100; i++ {
		drive(c, start.Add(time.Duration(i)*10*time.Millisecond), 10*time.Millisecond, 50_000, 1, 0)
		if w := c.Window(); w > step {
			t.Fatalf("window = %v after %d intervals of non-paying holds, want <= one step (%v)", w, i+1, step)
		}
	}
}

func TestIdleReturnsToLatencyFloor(t *testing.T) {
	c := New(Config{})
	start := time.Unix(1000, 0)
	now := drive(c, start, 200*time.Millisecond, 50_000, 2, 0)
	if c.Window() == 0 {
		t.Fatal("precondition: load should have opened the window")
	}
	// Traffic collapses to a trickle: a handful of single-message frames.
	// Multiplicative decrease must bring the window back to exactly 0.
	drive(c, now, 500*time.Millisecond, 40, 1, 0)
	if w := c.Window(); w != 0 {
		t.Fatalf("window = %v after going idle, want 0 (latency floor)", w)
	}
}

func TestSaturatedWellCoalescedHoldsSteady(t *testing.T) {
	c := New(Config{})
	start := time.Unix(1000, 0)
	// Saturation where round formation already coalesces 4x the target:
	// the window must stay at 0 — the static optimum under saturation.
	drive(c, start, 300*time.Millisecond, 200_000, 4*DefaultTargetBatch, 0)
	if w := c.Window(); w != 0 {
		t.Fatalf("window = %v under already-coalesced saturation, want 0", w)
	}
}

func TestHoldTailOverBudgetBacksOff(t *testing.T) {
	c := New(Config{MaxWindow: 2 * time.Millisecond, LatencyBudget: time.Millisecond})
	start := time.Unix(1000, 0)
	now := drive(c, start, 200*time.Millisecond, 50_000, 2, 0)
	grown := c.Window()
	if grown <= 0 {
		t.Fatal("precondition: load should have opened the window")
	}
	// Same load, but holds now blow the budget (e.g. the flushing tick is
	// arriving late): the controller must back off multiplicatively.
	drive(c, now, 100*time.Millisecond, 50_000, 2, 4*time.Millisecond)
	if w := c.Window(); w >= grown {
		t.Fatalf("window = %v did not shrink from %v despite hold p99 over budget", w, grown)
	}
}

func TestWindowIsCappedAtMaxWindow(t *testing.T) {
	maxW := 500 * time.Microsecond
	c := New(Config{MaxWindow: maxW, LatencyBudget: time.Hour})
	start := time.Unix(1000, 0)
	drive(c, start, time.Second, 100_000, 2, 0)
	if w := c.Window(); w > maxW {
		t.Fatalf("window = %v exceeds MaxWindow %v", w, maxW)
	}
	if w := c.Window(); w != maxW {
		t.Fatalf("window = %v, want pinned at MaxWindow %v under endless under-coalesced load", w, maxW)
	}
}

func TestSnapshotCounts(t *testing.T) {
	c := New(Config{})
	start := time.Unix(1000, 0)
	c.Observe(start, 3, 0)
	c.Observe(start.Add(time.Millisecond), 5, time.Microsecond)
	s := c.Snapshot()
	if s.Frames != 2 || s.Msgs != 8 {
		t.Fatalf("snapshot = %+v, want Frames=2 Msgs=8", s)
	}
	drive(c, start.Add(2*time.Millisecond), 100*time.Millisecond, 10_000, 2, 0)
	if s := c.Snapshot(); s.Decisions == 0 {
		t.Fatalf("snapshot = %+v, want completed control periods", s)
	}
}

func TestZeroAndNegativeObservationsIgnored(t *testing.T) {
	c := New(Config{})
	c.Observe(time.Unix(1000, 0), 0, 0)
	c.Observe(time.Unix(1001, 0), -1, 0)
	if s := c.Snapshot(); s.Frames != 0 || s.Msgs != 0 {
		t.Fatalf("empty observations were counted: %+v", s)
	}
}

func TestHoldP99UpperBound(t *testing.T) {
	c := New(Config{})
	now := time.Unix(1000, 0)
	// 99 fast holds and 1 slow one: p99 must not be dominated by the single
	// outlier (it is allowed to sit above it only once >1% of samples do).
	for i := 0; i < 99; i++ {
		c.Observe(now, 1, 10*time.Microsecond)
	}
	c.Observe(now, 1, 50*time.Millisecond)
	if p := c.holdP99(); p > 32*time.Microsecond {
		t.Fatalf("holdP99 = %v, want the bulk bucket (<=32µs), not the outlier", p)
	}
}
