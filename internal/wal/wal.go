// Package wal is the replica write-ahead log: the durability layer under
// every ordering backend. A log is a directory of fixed-prefix segment
// files holding length-prefixed, CRC-checked records — one record per
// A-delivered command plus epoch and configuration markers — and snapshot
// side files written at epoch boundaries.
//
// The contract the recovery path is built on:
//
//   - Append(SyncAlways) returns only after the record is on stable
//     storage, so a durably-acked command survives any crash;
//   - Open replays the segments strictly in order and truncates a torn
//     tail — a record cut short or corrupted by a crash mid-write — from
//     the final segment only; corruption anywhere earlier is data loss of
//     acked records and surfaces as ErrCorrupt rather than silence;
//   - TruncateThrough drops sealed segments entirely covered by a
//     snapshot, bounding the log at (snapshot interval + one segment).
//
// Record framing is [u32 length][u32 crc][type byte | payload]: the CRC
// (Castagnoli) covers the type byte and payload, so a flipped bit anywhere
// in a record is detected, and the length prefix is validated against the
// bytes actually remaining in the segment, so a torn length field reads as
// a torn tail, never as a giant allocation.
//
// The append path is allocation-free in steady state (a scratch header on
// the Log, a buffered writer per segment): with SyncNever it is cheap
// enough to sit on the optimistic hot path, which is what the
// BenchmarkHotPathAllocs gate pins.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SyncPolicy is the fsync knob: when Append forces the record to stable
// storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a returned Append is durable.
	// This is the policy the torn-write contract (no acked record lost) is
	// stated under.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS (and to segment rolls and Close).
	// A crash may lose a suffix of appended records — recovery then catches
	// the replica up from its peers instead of from disk.
	SyncNever
)

// RecordType tags every record.
type RecordType uint8

const (
	// RecordCommand is one A-delivered command (opaque payload; the backend
	// owns the encoding).
	RecordCommand RecordType = 1
	// RecordEpoch marks a closed epoch boundary (opaque payload).
	RecordEpoch RecordType = 2
	// RecordConfig marks a configuration change (opaque payload; reserved
	// for reconfiguration).
	RecordConfig RecordType = 3
)

// ErrCorrupt reports corruption outside the torn tail: a sealed segment
// that fails its CRC or a gap in the segment sequence. It means acked
// records are gone, which recovery must surface, never paper over.
var ErrCorrupt = errors.New("wal: corrupt log")

const (
	segPrefix = "seg-"
	segSuffix = ".wal"
	// headerSize is the per-record framing overhead.
	headerSize = 8
	// maxRecord bounds a single record; a length prefix beyond it is torn.
	maxRecord = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rolls to a new segment once the active one exceeds this
	// size (default 4 MiB).
	SegmentBytes int64
}

// Log is an open write-ahead log. It is owned by a single replica event
// loop and is not safe for concurrent use, like the state machine it
// journals.
type Log struct {
	dir      string
	sync     SyncPolicy
	segBytes int64

	cur      *os.File
	bw       *bufio.Writer
	curStart uint64 // index of the first record in the active segment
	curSize  int64
	next     uint64 // index the next Append receives
	start    uint64 // index of the first record still on disk
	// scratch holds one record's framing: length, crc, and the type byte
	// (kept adjacent so the crc input needs no temporary slice).
	scratch [headerSize + 1]byte
}

// Open opens (or creates) the log in opts.Dir, validating every sealed
// segment and truncating a torn tail from the final one. It returns the
// log positioned for appends.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty Dir")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: opts.Dir, sync: opts.Sync, segBytes: opts.SegmentBytes}
	if len(segs) == 0 {
		if err := l.openSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.start = segs[0]
	next := segs[0]
	for i, first := range segs {
		if first != next {
			return nil, fmt.Errorf("%w: segment gap: have seg at %d, expected %d", ErrCorrupt, first, next)
		}
		last := i == len(segs)-1
		count, good, err := scanSegment(segPath(opts.Dir, first))
		if err != nil && !last {
			return nil, fmt.Errorf("%w: sealed segment %d: %v", ErrCorrupt, first, err)
		}
		if last {
			// A torn tail is expected after a crash: keep the valid prefix.
			if err := os.Truncate(segPath(opts.Dir, first), good); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			l.curStart, l.curSize = first, good
		}
		next = first + count
	}
	l.next = next
	f, err := os.OpenFile(segPath(opts.Dir, l.curStart), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.bw = bufio.NewWriterSize(f, 64<<10)
	return l, nil
}

// Append journals one record and returns its index. Under SyncAlways the
// record is on stable storage when Append returns.
func (l *Log) Append(typ RecordType, payload []byte) (uint64, error) {
	recLen := headerSize + 1 + int64(len(payload))
	if l.curSize > 0 && l.curSize+recLen > l.segBytes {
		if err := l.roll(); err != nil {
			return 0, err
		}
	}
	l.scratch[headerSize] = byte(typ)
	crc := crc32.Update(0, crcTable, l.scratch[headerSize:])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(l.scratch[0:4], uint32(1+len(payload)))
	binary.LittleEndian.PutUint32(l.scratch[4:8], crc)
	if _, err := l.bw.Write(l.scratch[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.curSize += recLen
	pos := l.next
	l.next++
	if l.sync == SyncAlways {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return pos, nil
}

// Sync flushes buffered records and forces them to stable storage.
func (l *Log) Sync() error {
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Close flushes, syncs and closes the active segment.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.cur.Close(); err == nil {
		err = cerr
	}
	return err
}

// Next returns the index the next Append will receive.
func (l *Log) Next() uint64 { return l.next }

// Start returns the index of the first record still on disk (records below
// it were truncated under a covering snapshot).
func (l *Log) Start() uint64 { return l.start }

// Replay calls fn for every record on disk with index >= from, in order.
// It flushes buffered appends first, so a replica can replay what it has
// just written (boot-time recovery calls it before any append).
func (l *Log) Replay(from uint64, fn func(idx uint64, typ RecordType, payload []byte) error) error {
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, first := range segs {
		err := replaySegment(segPath(l.dir, first), first, from, fn)
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough removes sealed segments whose every record index is
// <= pos — called once a snapshot at pos makes the prefix redundant. The
// active segment is never removed.
func (l *Log) TruncateThrough(pos uint64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1]-1 <= pos && segs[i] != l.curStart {
			if err := os.Remove(segPath(l.dir, segs[i])); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			l.start = segs[i+1]
		}
	}
	return nil
}

// roll seals the active segment and starts the next one at l.next.
func (l *Log) roll() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: roll: %w", err)
	}
	return l.openSegment(l.next)
}

// openSegment creates the segment whose first record index is first.
func (l *Log) openSegment(first uint64) error {
	f, err := os.OpenFile(segPath(l.dir, first), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.cur, l.bw = f, bufio.NewWriterSize(f, 64<<10)
	l.curStart, l.curSize = first, 0
	if l.next < first {
		l.next = first
	}
	return nil
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix))
}

// listSegments returns the first-record index of every segment file in
// dir, sorted ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: segment name %q", ErrCorrupt, name)
		}
		firsts = append(firsts, first)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// scanSegment validates path record by record, returning the record count
// and the byte offset just past the last valid record. A framing or CRC
// error is returned with count/good reflecting the valid prefix, so the
// caller can either truncate (final segment) or fail (sealed segment).
func scanSegment(path string) (count uint64, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < headerSize {
			return count, off, fmt.Errorf("torn header at %d", off)
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n < 1 || n > maxRecord || headerSize+n > int64(len(rest)) {
			return count, off, fmt.Errorf("torn record at %d", off)
		}
		if crc32.Checksum(rest[headerSize:headerSize+n], crcTable) != crc {
			return count, off, fmt.Errorf("crc mismatch at %d", off)
		}
		off += headerSize + n
		count++
	}
	return count, off, nil
}

// replaySegment streams path's records, invoking fn for indices >= from.
func replaySegment(path string, first, from uint64, fn func(uint64, RecordType, []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off, idx := int64(0), first
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < headerSize {
			return nil // torn tail: Open already decided its fate
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n < 1 || n > maxRecord || headerSize+n > int64(len(rest)) {
			return nil
		}
		rec := rest[headerSize : headerSize+n]
		if crc32.Checksum(rec, crcTable) != crc {
			return nil
		}
		if idx >= from {
			if err := fn(idx, RecordType(rec[0]), rec[1:]); err != nil {
				return err
			}
		}
		off += headerSize + n
		idx++
	}
	return nil
}

// --- snapshots ---

// snapMagic heads every snapshot side file.
var snapMagic = []byte("oarsnap1")

// Snapshot is one snapshot side file: an opaque backend-owned image of the
// state after applying every record with index < Pos, taken at the close
// of Epoch.
type Snapshot struct {
	Pos   uint64
	Epoch uint64
	Data  []byte
}

// SaveSnapshot atomically writes snap into dir (temp file + rename, both
// fsynced) and removes older snapshot files. After it returns, LoadSnapshot
// observes either this snapshot or a newer one — never a torn mix.
func SaveSnapshot(dir string, snap Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	buf := make([]byte, 0, len(snapMagic)+28+len(snap.Data))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, snap.Pos)
	buf = binary.LittleEndian.AppendUint64(buf, snap.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(snap.Data, crcTable))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(snap.Data)))
	buf = append(buf, snap.Data...)

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	final := snapPath(dir, snap.Pos)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	// Older snapshots are now redundant; best-effort cleanup.
	if others, err := listSnapshots(dir); err == nil {
		for _, pos := range others {
			if pos < snap.Pos {
				_ = os.Remove(snapPath(dir, pos))
			}
		}
	}
	return nil
}

// LoadSnapshot returns the newest valid snapshot in dir. A snapshot that
// fails validation is skipped in favor of an older one — a half-written
// file must never beat a durable predecessor. ok is false when dir holds
// no valid snapshot.
func LoadSnapshot(dir string) (snap Snapshot, ok bool, err error) {
	poss, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Snapshot{}, false, nil
		}
		return Snapshot{}, false, err
	}
	for i := len(poss) - 1; i >= 0; i-- {
		s, valid := readSnapshot(snapPath(dir, poss[i]))
		if valid {
			return s, true, nil
		}
	}
	return Snapshot{}, false, nil
}

func snapPath(dir string, pos uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", pos))
}

func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var poss []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		pos, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if err != nil {
			continue
		}
		poss = append(poss, pos)
	}
	sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	return poss, nil
}

// readSnapshot decodes and validates one snapshot file.
func readSnapshot(path string) (Snapshot, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, false
	}
	if len(data) < len(snapMagic)+28 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return Snapshot{}, false
	}
	rest := data[len(snapMagic):]
	pos := binary.LittleEndian.Uint64(rest[0:8])
	epoch := binary.LittleEndian.Uint64(rest[8:16])
	crc := binary.LittleEndian.Uint32(rest[16:20])
	n := binary.LittleEndian.Uint64(rest[20:28])
	body := rest[28:]
	if n != uint64(len(body)) || crc32.Checksum(body, crcTable) != crc {
		return Snapshot{}, false
	}
	return Snapshot{Pos: pos, Epoch: epoch, Data: body}, true
}
