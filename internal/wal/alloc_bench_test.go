package wal

import (
	"testing"
)

// BenchmarkHotPathAllocs measures — and asserts — the allocation count of
// the steady-state append path. A replica journals every A-delivered
// command from its event loop, so a WAL append sits on the same hot path
// as the zero-allocation codecs of internal/proto: header encoding uses
// the Log's fixed scratch array and the payload is written straight
// through the buffered writer. The benchmark runs under SyncNever so it
// measures the append machinery, not the disk (the fsync of SyncAlways
// allocates nothing either, but its latency would drown the signal); each
// sub-benchmark fails if the operation allocates at all, so
// `go test -bench=HotPathAllocs -benchtime=1x` doubles as a CI regression
// gate alongside the proto and transport ones.
func BenchmarkHotPathAllocs(b *testing.B) {
	l, err := Open(Options{
		Dir:  b.TempDir(),
		Sync: SyncNever,
		// Keep one segment for the whole run: rolling opens a file, which
		// allocates legitimately and is off the per-append path.
		SegmentBytes: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte("set key-0000000042 value-0000000042")

	cases := []struct {
		name string
		op   func()
	}{
		{"append/command", func() {
			if _, err := l.Append(RecordCommand, payload); err != nil {
				b.Fatal(err)
			}
		}},
		{"append/epoch", func() {
			if _, err := l.Append(RecordEpoch, payload[:8]); err != nil {
				b.Fatal(err)
			}
		}},
	}

	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tc.op() // warm up: fault in the segment and buffer
			if allocs := testing.AllocsPerRun(100, tc.op); allocs != 0 {
				b.Fatalf("%s: %v allocs/op, want 0 (zero-allocation append path regressed)", tc.name, allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.op()
			}
		})
	}
}
