package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// record is one replayed record, for asserting on log contents.
type record struct {
	idx     uint64
	typ     RecordType
	payload string
}

// readAll replays the whole log into a slice.
func readAll(t *testing.T, l *Log) []record {
	t.Helper()
	var out []record
	err := l.Replay(0, func(idx uint64, typ RecordType, payload []byte) error {
		out = append(out, record{idx, typ, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		typ := RecordCommand
		if i%4 == 3 {
			typ = RecordEpoch
		}
		idx, err := l.Append(typ, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Fatalf("append %d returned idx %d", i, idx)
		}
	}
	recs := readAll(t, l)
	if len(recs) != 10 {
		t.Fatalf("replay saw %d records, want 10", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Next() != 10 {
		t.Fatalf("reopened Next() = %d, want 10", l2.Next())
	}
	recs2 := readAll(t, l2)
	if len(recs2) != 10 || recs2[3].typ != RecordEpoch || recs2[9].payload != "payload-9" {
		t.Fatalf("reopened replay mismatch: %+v", recs2)
	}
	if idx, err := l2.Append(RecordCommand, []byte("after-reopen")); err != nil || idx != 10 {
		t.Fatalf("append after reopen: idx=%d err=%v", idx, err)
	}
}

func TestSegmentRollAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every few records roll into a fresh file.
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.Append(RecordCommand, []byte(fmt.Sprintf("cmd-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}

	// A snapshot covering the first 30 records lets the sealed prefix go.
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if l.Start() == 0 {
		t.Fatal("Start() still 0 after truncation")
	}
	var got []record
	if err := l.Replay(l.Start(), func(idx uint64, typ RecordType, p []byte) error {
		got = append(got, record{idx, typ, string(p)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].idx > 30 {
		t.Fatalf("post-truncation replay lost uncovered records: first=%+v", got)
	}
	if got[len(got)-1].idx != 39 {
		t.Fatalf("post-truncation replay missing tail: last=%+v", got[len(got)-1])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening a truncated log resumes at the right index.
	l2, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Next() != 40 {
		t.Fatalf("reopened Next() = %d, want 40", l2.Next())
	}
}

func TestSealedSegmentCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := l.Append(RecordCommand, []byte(fmt.Sprintf("cmd-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments: %v %v", segs, err)
	}
	// Flip a byte in the middle of the FIRST (sealed) segment: that is acked
	// data loss, and Open must refuse rather than silently truncate history.
	path := segPath(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupted sealed segment: err=%v, want ErrCorrupt", err)
	}
}

// TestTornWriteRecovery is the fault-injection contract of the WAL: with
// SyncAlways, every record whose Append returned is durable, and a crash
// mid-write of the NEXT record — simulated by truncating or corrupting the
// final record at every byte offset — must neither panic recovery nor lose
// any of the acked records.
func TestTornWriteRecovery(t *testing.T) {
	const acked = 7 // records 0..6 acked; record 7 is the torn victim
	master := t.TempDir()
	l, err := Open(Options{Dir: master, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= acked; i++ {
		if _, err := l.Append(RecordCommand, []byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment: %v %v", segs, err)
	}
	whole, err := os.ReadFile(segPath(master, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the last record's start offset by framing.
	lastStart := 0
	for off := 0; off < len(whole); {
		n := int(uint32(whole[off]) | uint32(whole[off+1])<<8 | uint32(whole[off+2])<<16 | uint32(whole[off+3])<<24)
		if off+headerSize+n > len(whole) {
			t.Fatalf("bad framing in test setup at %d", off)
		}
		if off+headerSize+n == len(whole) {
			lastStart = off
		}
		off += headerSize + n
	}

	check := func(t *testing.T, dir string, mayKeepLast bool) {
		t.Helper()
		l, err := Open(Options{Dir: dir, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer l.Close()
		recs := readAll(t, l)
		if len(recs) < acked {
			t.Fatalf("lost acked records: recovered %d, want >= %d", len(recs), acked)
		}
		if len(recs) > acked+1 || (len(recs) == acked+1 && !mayKeepLast) {
			t.Fatalf("recovered %d records, more than were written intact", len(recs))
		}
		for i := 0; i < acked; i++ {
			want := fmt.Sprintf("cmd-%d", i)
			if recs[i].payload != want {
				t.Fatalf("record %d: got %q want %q", i, recs[i].payload, want)
			}
		}
		// The log must accept appends after recovery.
		if _, err := l.Append(RecordCommand, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	}

	setup := func(t *testing.T) string {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 0), whole, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Truncation at every offset inside the last record: the torn record is
	// dropped, everything acked before it survives.
	for cut := lastStart; cut < len(whole); cut++ {
		t.Run(fmt.Sprintf("truncate-%d", cut), func(t *testing.T) {
			dir := setup(t)
			if err := os.Truncate(segPath(dir, 0), int64(cut)); err != nil {
				t.Fatal(err)
			}
			check(t, dir, false)
		})
	}
	// Bit-flip at every offset inside the last record: CRC (or framing
	// validation) must catch it; the flipped record is truncated away.
	for off := lastStart; off < len(whole); off++ {
		t.Run(fmt.Sprintf("flip-%d", off), func(t *testing.T) {
			dir := setup(t)
			data := bytes.Clone(whole)
			data[off] ^= 0x01
			if err := os.WriteFile(segPath(dir, 0), data, 0o644); err != nil {
				t.Fatal(err)
			}
			check(t, dir, false)
		})
	}
	// Control: the untampered log keeps all acked+1 records.
	t.Run("intact", func(t *testing.T) { check(t, setup(t), true) })
}

func TestSnapshotSaveLoad(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadSnapshot(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if err := SaveSnapshot(dir, Snapshot{Pos: 10, Epoch: 2, Data: []byte("state-a")}); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(dir, Snapshot{Pos: 25, Epoch: 5, Data: []byte("state-b")}); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := LoadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if snap.Pos != 25 || snap.Epoch != 5 || string(snap.Data) != "state-b" {
		t.Fatalf("loaded %+v", snap)
	}
	// Older snapshots are cleaned up by the newer save.
	if poss, err := listSnapshots(dir); err != nil || len(poss) != 1 {
		t.Fatalf("snapshot cleanup: %v %v", poss, err)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := SaveSnapshot(dir, Snapshot{Pos: 10, Epoch: 2, Data: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot arrives torn: flip a byte in its body.
	if err := SaveSnapshot(dir, Snapshot{Pos: 20, Epoch: 4, Data: []byte("newer")}); err != nil {
		t.Fatal(err)
	}
	// Re-add the older one (SaveSnapshot removed it), then corrupt the newer.
	if err := SaveSnapshot(dir, Snapshot{Pos: 10, Epoch: 2, Data: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snap-00000000000000000020.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := LoadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if snap.Pos != 10 || string(snap.Data) != "good" {
		t.Fatalf("corrupt snapshot was not skipped: %+v", snap)
	}
}
