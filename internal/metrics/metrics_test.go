package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram returns non-zero values")
	}
}

func TestSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != time.Millisecond || s.Max != time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
	if s.P50 != time.Millisecond {
		t.Errorf("p50 = %v, want exactly the single sample (clamped)", s.P50)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]time.Duration, 10000)
	for i := range samples {
		samples[i] = time.Duration(rng.Intn(10_000_000)) * time.Nanosecond
		h.Record(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < -0.08 || relErr > 0.08 {
			t.Errorf("q=%.2f: got %v, exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	if got := h.Quantile(-1); got != time.Millisecond {
		t.Errorf("q<0 = %v", got)
	}
	if got := h.Quantile(2); got != 2*time.Millisecond {
		t.Errorf("q>1 = %v", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(1 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestSubMinimumSample(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Nanosecond) // below minTrackable; must not panic
	if h.Count() != 1 {
		t.Error("sample lost")
	}
}

func TestConcurrentRecording(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Duration(j+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if h.Count() != 1 {
		t.Error("zero-value histogram unusable")
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Merge(nil)
	h.Merge(NewHistogram())
	if h.Count() != 1 || h.Min() != time.Millisecond || h.Max() != time.Millisecond {
		t.Errorf("merge with empty/nil disturbed the histogram: %+v", h.Snapshot())
	}
	empty := NewHistogram()
	empty.Merge(h)
	if empty.Count() != 1 || empty.Min() != time.Millisecond {
		t.Errorf("merge into empty lost data: %+v", empty.Snapshot())
	}
}

// TestMergeMatchesSingle feeds the same samples into one histogram and into
// three shards merged together: every summary statistic must agree exactly
// (merging adds bucket counts, it does not re-approximate).
func TestMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	single := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 30_000; i++ {
		d := time.Duration(rng.Intn(50_000_000)+100) * time.Nanosecond
		single.Record(d)
		parts[i%3].Record(d)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	a, b := single.Snapshot(), merged.Snapshot()
	if a != b {
		t.Errorf("merged snapshot diverges:\n single %+v\n merged %+v", a, b)
	}
}

// TestMergeAssociative: (a⊕b)⊕c == a⊕(b⊕c) — the property that lets shards,
// clients and processes aggregate in any order.
func TestMergeAssociative(t *testing.T) {
	mk := func(seed int64) *Histogram {
		h := NewHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			h.Record(time.Duration(rng.Intn(10_000_000)+1) * time.Nanosecond)
		}
		return h
	}
	left := NewHistogram()
	left.Merge(mk(1))
	left.Merge(mk(2))
	left.Merge(mk(3))
	bc := NewHistogram()
	bc.Merge(mk(2))
	bc.Merge(mk(3))
	right := NewHistogram()
	right.Merge(mk(1))
	right.Merge(bc)
	if l, r := left.Snapshot(), right.Snapshot(); l != r {
		t.Errorf("merge is not associative:\n left  %+v\n right %+v", l, r)
	}
}

// TestConcurrentRecordAndSnapshot hammers Record from several goroutines
// while another goroutine continuously snapshots; run under -race this is
// the histogram's race-safety test, and the final counts must be exact.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	h := NewHistogram()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count > 0 && (s.P50 < s.Min || s.P99 > s.Max || s.P50 > s.P99) {
				t.Errorf("inconsistent mid-run snapshot: %+v", s)
				return
			}
		}
	}()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < perWriter; j++ {
				h.Record(time.Duration(rng.Intn(1_000_000)+1) * time.Nanosecond)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	if h.Count() != writers*perWriter {
		t.Errorf("count = %d, want %d", h.Count(), writers*perWriter)
	}
	s := h.Snapshot()
	if s.Count != writers*perWriter || s.P50 == 0 || s.P99 < s.P50 || s.Max < s.P99 {
		t.Errorf("final snapshot malformed: %+v", s)
	}
}

func TestOverflowSample(t *testing.T) {
	h := NewHistogram()
	h.Record(2 * time.Hour) // far past the tracked range
	if h.Max() != 2*time.Hour {
		t.Errorf("max = %v, want the true (untracked) value", h.Max())
	}
	if got := h.Quantile(0.5); got != 2*time.Hour {
		t.Errorf("p50 of a single overflow sample = %v, want clamped to max", got)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"proto", "p50"}, [][]string{{"oar", "1ms"}, {"fixedseq", "900µs"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "proto") || !strings.Contains(lines[0], "p50") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "oar") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "p50=") {
		t.Errorf("snapshot string = %q", s)
	}
}
