package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram returns non-zero values")
	}
}

func TestSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != time.Millisecond || s.Max != time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
	if s.P50 != time.Millisecond {
		t.Errorf("p50 = %v, want exactly the single sample (clamped)", s.P50)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]time.Duration, 10000)
	for i := range samples {
		samples[i] = time.Duration(rng.Intn(10_000_000)) * time.Nanosecond
		h.Record(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < -0.08 || relErr > 0.08 {
			t.Errorf("q=%.2f: got %v, exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	if got := h.Quantile(-1); got != time.Millisecond {
		t.Errorf("q<0 = %v", got)
	}
	if got := h.Quantile(2); got != 2*time.Millisecond {
		t.Errorf("q>1 = %v", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(1 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestSubMinimumSample(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Nanosecond) // below minTrackable; must not panic
	if h.Count() != 1 {
		t.Error("sample lost")
	}
}

func TestConcurrentRecording(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Duration(j+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if h.Count() != 1 {
		t.Error("zero-value histogram unusable")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"proto", "p50"}, [][]string{{"oar", "1ms"}, {"fixedseq", "900µs"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "proto") || !strings.Contains(lines[0], "p50") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "oar") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "p50=") {
		t.Errorf("snapshot string = %q", s)
	}
}
