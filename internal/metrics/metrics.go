// Package metrics provides the latency histogram and counters used by the
// benchmark harness, the workload engine and the client-side latency
// instrumentation. The histogram uses a fixed array of logarithmically
// spaced buckets (HDR-style: ~3.7% relative resolution) so that p50/p99/max
// queries are O(1) memory regardless of sample count, recording is a single
// lock-free atomic increment (cheap enough to sit on every client's request
// path), and two histograms merge exactly — bucket counts add — which is
// what lets per-shard and per-client histograms aggregate into cluster-wide
// percentiles without approximation error beyond the bucket resolution.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// bucketsPerDecade controls histogram resolution: 64 buckets per 10x range
// gives ~3.7% relative error, plenty for latency shapes.
const bucketsPerDecade = 64

// minTrackable is the smallest distinguishable latency (100 ns). Samples
// below it are clamped up before any bookkeeping.
const minTrackable = 100 * time.Nanosecond

// trackedDecades spans minTrackable to 1000 s — wider than any latency this
// system can produce. Samples past the top land in the overflow bucket (their
// true value still feeds Max).
const trackedDecades = 10

// numBuckets is the fixed bucket count: trackedDecades full decades plus one
// overflow bucket.
const numBuckets = trackedDecades*bucketsPerDecade + 1

// Histogram is a log-bucketed latency histogram over a fixed bucket array.
// The zero value is ready to use. It is safe for concurrent use: Record is a
// lock-free atomic increment, and readers (Quantile, Snapshot, Merge) see
// each sample's bucket either fully counted or not at all. A Histogram must
// not be copied after first use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // 0 = no samples yet (real samples are >= minTrackable)
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(d time.Duration) int {
	b := int(math.Floor(math.Log10(float64(d)/float64(minTrackable)) * bucketsPerDecade))
	if b < 0 {
		return 0
	}
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketValue is the representative latency of bucket b (its log-scale
// midpoint).
func bucketValue(b int) time.Duration {
	return time.Duration(float64(minTrackable) * math.Pow(10, (float64(b)+0.5)/bucketsPerDecade))
}

// Record adds one latency sample. Samples below the 100ns resolution floor
// are clamped up to it.
func (h *Histogram) Record(d time.Duration) {
	if d < minTrackable {
		d = minTrackable
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= int64(d) {
			break
		}
		if h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= int64(d) {
			break
		}
		if h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Merge adds every sample of other into h (bucket counts add exactly, so
// merging is associative and commutative up to the shared bucket layout).
// It tolerates a nil other. Merging while other is still being recorded to
// is safe but may miss in-flight samples; merge after the measured run, or
// accept the skew.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if omin := other.min.Load(); omin != 0 {
		for {
			cur := h.min.Load()
			if cur != 0 && cur <= omin {
				break
			}
			if h.min.CompareAndSwap(cur, omin) {
				break
			}
		}
	}
	if omax := other.max.Load(); omax != 0 {
		for {
			cur := h.max.Load()
			if cur >= omax {
				break
			}
			if h.max.CompareAndSwap(cur, omax) {
				break
			}
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n)) //nolint:gosec // n > 0
}

// Min returns the smallest sample (clamped to the 100ns floor; 0 when
// empty).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min.Load()) }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the latency at quantile q ∈ [0, 1] (0 when empty). The
// result carries the bucket's ~4% resolution, clamped to [Min, Max].
func (h *Histogram) Quantile(q float64) time.Duration {
	var local [numBuckets]uint64
	total := h.load(&local)
	return h.quantileOf(q, &local, total)
}

// load copies the bucket array into local and returns its total, giving the
// quantile computation one consistent view (count may lag the buckets by
// in-flight samples; the bucket total is authoritative here).
func (h *Histogram) load(local *[numBuckets]uint64) uint64 {
	var total uint64
	for i := range h.buckets {
		local[i] = h.buckets[i].Load()
		total += local[i]
	}
	return total
}

func (h *Histogram) quantileOf(q float64, local *[numBuckets]uint64, total uint64) time.Duration {
	if total == 0 {
		return 0
	}
	min, max := h.Min(), h.Max()
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range local {
		cum += n
		if cum >= target {
			v := bucketValue(b)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// Snapshot summarizes the histogram.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Snapshot returns a consistent summary: all three quantiles are computed
// from one atomic pass over the bucket array.
func (h *Histogram) Snapshot() Snapshot {
	var local [numBuckets]uint64
	total := h.load(&local)
	var mean time.Duration
	if total > 0 {
		mean = time.Duration(h.sum.Load() / int64(total)) //nolint:gosec // total > 0
	}
	return Snapshot{
		Count: total,
		Mean:  mean,
		P50:   h.quantileOf(0.50, &local, total),
		P90:   h.quantileOf(0.90, &local, total),
		P99:   h.quantileOf(0.99, &local, total),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, round(s.Mean), round(s.P50), round(s.P90), round(s.P99), round(s.Max))
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// Table formats rows of labelled snapshots as an aligned text table — the
// output format of the benchmark harness.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
