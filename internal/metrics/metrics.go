// Package metrics provides the latency histogram and counters used by the
// benchmark harness. The histogram uses logarithmically spaced buckets
// (HDR-style: ~4% relative resolution) so that p50/p99/max queries are O(1)
// memory regardless of sample count, and recording is lock-protected but
// cheap enough for closed-loop workloads.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// bucketsPerDecade controls histogram resolution: 64 buckets per 10x range
// gives ~3.7% relative error, plenty for latency shapes.
const bucketsPerDecade = 64

// minTrackable is the smallest distinguishable latency (100 ns).
const minTrackable = 100 * time.Nanosecond

// Histogram is a log-bucketed latency histogram. The zero value is ready to
// use; it is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]uint64)}
}

func bucketOf(d time.Duration) int {
	if d < minTrackable {
		d = minTrackable
	}
	return int(math.Floor(math.Log10(float64(d)/float64(minTrackable)) * bucketsPerDecade))
}

func bucketValue(b int) time.Duration {
	return time.Duration(float64(minTrackable) * math.Pow(10, (float64(b)+0.5)/bucketsPerDecade))
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return the observed extremes.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the latency at quantile q ∈ [0, 1] (0 when empty). The
// result carries the bucket's ~4% resolution, clamped to [Min, Max].
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range keys {
		cum += h.buckets[b]
		if cum >= target {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Snapshot summarizes the histogram.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Snapshot returns a consistent summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, round(s.Mean), round(s.P50), round(s.P90), round(s.P99), round(s.Max))
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// Table formats rows of labelled snapshots as an aligned text table — the
// output format of the benchmark harness.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
