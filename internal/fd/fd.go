// Package fd provides failure detectors for the asynchronous-system-plus-◊S
// model of Section 3 of the paper.
//
// Two implementations:
//
//   - Timeout: a heartbeat-timeout detector. Each process periodically sends
//     heartbeats; a peer unseen for longer than the configured timeout is
//     suspected, and unsuspected again as soon as a fresh heartbeat arrives.
//     With eventually-stable links this realizes ◊S in practice (eventual
//     weak accuracy holds once delays stabilize below the timeout).
//
//   - Oracle: a scriptable detector for deterministic scenario tests: the
//     test decides exactly who is suspected and when, which is how the
//     Figure 3 and Figure 4 runs are replayed exactly.
//
// Detectors are passive: the owning process feeds them heartbeat
// observations (Observe) and samples suspicion (Suspected). This keeps all
// protocol state on a single goroutine, as the paper's tasks-in-mutual-
// exclusion model demands.
package fd

import (
	"sync"
	"time"

	"repro/internal/proto"
)

// Detector answers "do I currently suspect process id?". Implementations
// must be safe for concurrent use (the Oracle is driven from test
// goroutines).
type Detector interface {
	// Observe records a liveness indication (e.g. heartbeat) from id at time
	// now.
	Observe(id proto.NodeID, now time.Time)
	// Suspected reports whether id is suspected at time now.
	Suspected(id proto.NodeID, now time.Time) bool
}

// Timeout is a heartbeat-timeout failure detector. The zero value is not
// usable; use NewTimeout.
type Timeout struct {
	timeout time.Duration

	mu       sync.Mutex
	lastSeen map[proto.NodeID]time.Time
}

var _ Detector = (*Timeout)(nil)

// NewTimeout creates a timeout detector. A process is suspected once it has
// not been observed for longer than timeout. Every peer starts with an
// implicit observation at start, so freshly booted peers get one full
// timeout before being suspected.
func NewTimeout(timeout time.Duration, peers []proto.NodeID, start time.Time) *Timeout {
	d := &Timeout{
		timeout:  timeout,
		lastSeen: make(map[proto.NodeID]time.Time, len(peers)),
	}
	for _, p := range peers {
		d.lastSeen[p] = start
	}
	return d
}

// Observe implements Detector.
func (d *Timeout) Observe(id proto.NodeID, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if last, ok := d.lastSeen[id]; !ok || now.After(last) {
		d.lastSeen[id] = now
	}
}

// Suspected implements Detector.
func (d *Timeout) Suspected(id proto.NodeID, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	last, ok := d.lastSeen[id]
	if !ok {
		return false // unknown processes are not suspected
	}
	return now.Sub(last) > d.timeout
}

// TimeoutValue returns the configured suspicion timeout.
func (d *Timeout) TimeoutValue() time.Duration { return d.timeout }

// Oracle is a scriptable failure detector: tests control its verdicts
// directly. It ignores observations.
type Oracle struct {
	mu        sync.Mutex
	suspected map[proto.NodeID]bool
}

var _ Detector = (*Oracle)(nil)

// NewOracle creates an oracle that initially suspects nobody.
func NewOracle() *Oracle {
	return &Oracle{suspected: make(map[proto.NodeID]bool)}
}

// Suspect marks id as suspected.
func (o *Oracle) Suspect(id proto.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.suspected[id] = true
}

// Trust clears the suspicion of id.
func (o *Oracle) Trust(id proto.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.suspected, id)
}

// Observe implements Detector; the oracle ignores heartbeats.
func (o *Oracle) Observe(proto.NodeID, time.Time) {}

// Suspected implements Detector.
func (o *Oracle) Suspected(id proto.NodeID, _ time.Time) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.suspected[id]
}

// Never is a detector that never suspects anyone — the "perfectly accurate,
// completely unhelpful" detector. Useful for failure-free benchmark runs
// where suspicion handling should never trigger.
type Never struct{}

var _ Detector = Never{}

// Observe implements Detector.
func (Never) Observe(proto.NodeID, time.Time) {}

// Suspected implements Detector.
func (Never) Suspected(proto.NodeID, time.Time) bool { return false }
