package fd

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestTimeoutSuspectsAfterSilence(t *testing.T) {
	start := time.Unix(0, 0)
	d := NewTimeout(100*time.Millisecond, proto.Group(3), start)

	if d.Suspected(1, start.Add(50*time.Millisecond)) {
		t.Error("suspected within timeout of start")
	}
	if !d.Suspected(1, start.Add(150*time.Millisecond)) {
		t.Error("not suspected after timeout")
	}
}

func TestTimeoutHeartbeatRefreshes(t *testing.T) {
	start := time.Unix(0, 0)
	d := NewTimeout(100*time.Millisecond, proto.Group(2), start)

	d.Observe(1, start.Add(90*time.Millisecond))
	if d.Suspected(1, start.Add(150*time.Millisecond)) {
		t.Error("suspected despite recent heartbeat")
	}
	if !d.Suspected(1, start.Add(250*time.Millisecond)) {
		t.Error("not suspected after heartbeat went stale")
	}
}

func TestTimeoutUnsuspectsOnRecovery(t *testing.T) {
	// ◊S allows wrong suspicions that are later revoked: a late heartbeat
	// must clear the suspicion.
	start := time.Unix(0, 0)
	d := NewTimeout(100*time.Millisecond, proto.Group(2), start)
	at := start.Add(200 * time.Millisecond)
	if !d.Suspected(1, at) {
		t.Fatal("precondition: should be suspected")
	}
	d.Observe(1, at)
	if d.Suspected(1, at.Add(10*time.Millisecond)) {
		t.Error("still suspected after fresh heartbeat")
	}
}

func TestTimeoutIgnoresStaleObservation(t *testing.T) {
	start := time.Unix(0, 0)
	d := NewTimeout(100*time.Millisecond, proto.Group(2), start)
	d.Observe(1, start.Add(500*time.Millisecond))
	d.Observe(1, start.Add(100*time.Millisecond)) // out-of-order, stale
	if d.Suspected(1, start.Add(550*time.Millisecond)) {
		t.Error("stale observation overwrote a fresher one")
	}
}

func TestTimeoutUnknownProcessNotSuspected(t *testing.T) {
	d := NewTimeout(time.Millisecond, nil, time.Unix(0, 0))
	if d.Suspected(9, time.Unix(100, 0)) {
		t.Error("unknown process suspected")
	}
}

func TestTimeoutValue(t *testing.T) {
	d := NewTimeout(42*time.Millisecond, nil, time.Time{})
	if d.TimeoutValue() != 42*time.Millisecond {
		t.Error("TimeoutValue mismatch")
	}
}

func TestOracleScripting(t *testing.T) {
	o := NewOracle()
	now := time.Now()
	if o.Suspected(0, now) {
		t.Error("fresh oracle suspects someone")
	}
	o.Suspect(0)
	if !o.Suspected(0, now) {
		t.Error("Suspect did not take effect")
	}
	o.Observe(0, now) // must be a no-op
	if !o.Suspected(0, now) {
		t.Error("Observe cleared an oracle suspicion")
	}
	o.Trust(0)
	if o.Suspected(0, now) {
		t.Error("Trust did not clear suspicion")
	}
}

func TestOracleConcurrentAccess(t *testing.T) {
	o := NewOracle()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := proto.NodeID(i % 3)
			for j := 0; j < 200; j++ {
				o.Suspect(id)
				o.Suspected(id, time.Time{})
				o.Trust(id)
			}
		}(i)
	}
	wg.Wait()
}

func TestNever(t *testing.T) {
	var d Never
	d.Observe(1, time.Now())
	if d.Suspected(1, time.Now().Add(time.Hour)) {
		t.Error("Never suspected someone")
	}
}
