package app

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
)

// Durable is the optional durability extension of Machine: machines that
// can serialize their full state implement it, enabling FSM snapshots at
// epoch boundaries (where the undo-set is empty, so the image is a pure
// A-delivered prefix) and restore-on-recovery.
//
// Snapshot must capture every bit of state that Fingerprint observes, so
// Restore(Snapshot()) yields a fingerprint-identical machine — the
// property replica recovery's byte-identical-convergence check rests on.
// Restore replaces the machine's state wholesale and must reject a
// corrupted or foreign image with an error rather than install a silently
// wrong state: every image is framed with a machine-name header and a CRC
// over the body.
type Durable interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// snapHeader frames every app snapshot: "appsnap1 <machine> <crc32>\n".
const snapHeader = "appsnap1"

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// encodeSnap frames body with the machine name and a Castagnoli CRC.
func encodeSnap(machine string, body string) []byte {
	crc := crc32.Checksum([]byte(body), snapCRCTable)
	return []byte(fmt.Sprintf("%s %s %08x\n%s", snapHeader, machine, crc, body))
}

// decodeSnap validates blob's framing for the given machine and returns
// the body.
func decodeSnap(machine string, blob []byte) (string, error) {
	s := string(blob)
	nl := strings.IndexByte(s, '\n')
	if nl < 0 {
		return "", fmt.Errorf("app: %s restore: missing snapshot header", machine)
	}
	head, body := s[:nl], s[nl+1:]
	f := strings.Fields(head)
	if len(f) != 3 || f[0] != snapHeader {
		return "", fmt.Errorf("app: %s restore: bad snapshot header %q", machine, head)
	}
	if f[1] != machine {
		return "", fmt.Errorf("app: %s restore: snapshot is for machine %q", machine, f[1])
	}
	want, err := strconv.ParseUint(f[2], 16, 32)
	if err != nil {
		return "", fmt.Errorf("app: %s restore: bad snapshot checksum field %q", machine, f[2])
	}
	got := crc32.Checksum([]byte(body), snapCRCTable)
	if uint32(want) != got {
		return "", fmt.Errorf("app: %s restore: snapshot checksum mismatch (want %08x, got %08x)", machine, want, got)
	}
	return body, nil
}

// nonEmptyLines splits body into lines, dropping the trailing empty line.
func nonEmptyLines(body string) []string {
	if body == "" {
		return nil
	}
	lines := strings.Split(body, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	return lines
}

// --- KV ---

var _ Durable = (*KV)(nil)

// Snapshot implements Durable: one "key value" line per entry, in
// fingerprint (sorted-key) order.
func (kv *KV) Snapshot() ([]byte, error) {
	var b strings.Builder
	for _, k := range sortedKeys(kv.data) {
		fmt.Fprintf(&b, "%s %s\n", k, kv.data[k])
	}
	return encodeSnap("kv", b.String()), nil
}

// Restore implements Durable.
func (kv *KV) Restore(blob []byte) error {
	body, err := decodeSnap("kv", blob)
	if err != nil {
		return err
	}
	data := make(map[string]string)
	for _, line := range nonEmptyLines(body) {
		f := strings.Fields(line)
		if len(f) != 2 {
			return fmt.Errorf("app: kv restore: bad entry %q", line)
		}
		data[f[0]] = f[1]
	}
	kv.data = data
	return nil
}

// --- Counter ---

var _ Durable = (*Counter)(nil)

// Snapshot implements Durable.
func (c *Counter) Snapshot() ([]byte, error) {
	return encodeSnap("counter", strconv.FormatInt(c.value, 10)), nil
}

// Restore implements Durable.
func (c *Counter) Restore(blob []byte) error {
	body, err := decodeSnap("counter", blob)
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(strings.TrimSpace(body), 10, 64)
	if err != nil {
		return fmt.Errorf("app: counter restore: bad value %q", body)
	}
	c.value = v
	return nil
}

// --- Bank ---

var _ Durable = (*Bank)(nil)

// Snapshot implements Durable: one "account balance" line per account, in
// sorted order.
func (b *Bank) Snapshot() ([]byte, error) {
	var sb strings.Builder
	for _, a := range sortedKeys(b.accounts) {
		fmt.Fprintf(&sb, "%s %d\n", a, b.accounts[a])
	}
	return encodeSnap("bank", sb.String()), nil
}

// Restore implements Durable.
func (b *Bank) Restore(blob []byte) error {
	body, err := decodeSnap("bank", blob)
	if err != nil {
		return err
	}
	accounts := make(map[string]int64)
	for _, line := range nonEmptyLines(body) {
		f := strings.Fields(line)
		if len(f) != 2 {
			return fmt.Errorf("app: bank restore: bad entry %q", line)
		}
		bal, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return fmt.Errorf("app: bank restore: bad balance %q", line)
		}
		accounts[f[0]] = bal
	}
	b.accounts = accounts
	return nil
}

// --- Queue ---

var _ Durable = (*Queue)(nil)

// Snapshot implements Durable. The consumed prefix and head index are kept
// verbatim — Fingerprint exposes the head position, and post-restore undo
// closures walk back into the consumed region — so the image is the full
// item slice behind a "head <n>" line.
func (q *Queue) Snapshot() ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "head %d\n", q.head)
	for _, it := range q.items {
		fmt.Fprintf(&b, "%s\n", it)
	}
	return encodeSnap("queue", b.String()), nil
}

// Restore implements Durable.
func (q *Queue) Restore(blob []byte) error {
	body, err := decodeSnap("queue", blob)
	if err != nil {
		return err
	}
	lines := nonEmptyLines(body)
	if len(lines) == 0 {
		return fmt.Errorf("app: queue restore: missing head line")
	}
	f := strings.Fields(lines[0])
	if len(f) != 2 || f[0] != "head" {
		return fmt.Errorf("app: queue restore: bad head line %q", lines[0])
	}
	head, err := strconv.Atoi(f[1])
	if err != nil || head < 0 || head > len(lines)-1 {
		return fmt.Errorf("app: queue restore: bad head %q for %d items", f[1], len(lines)-1)
	}
	var items []string
	if len(lines) > 1 {
		items = append(items, lines[1:]...)
	}
	q.items, q.head = items, head
	return nil
}

// --- Recorder ---

var _ Durable = (*Recorder)(nil)

// Snapshot implements Durable: one quoted command per line (commands may
// contain whitespace, unlike the token-valued machines above).
func (r *Recorder) Snapshot() ([]byte, error) {
	var b strings.Builder
	for _, cmd := range r.log {
		fmt.Fprintf(&b, "%s\n", strconv.Quote(cmd))
	}
	return encodeSnap("recorder", b.String()), nil
}

// Restore implements Durable.
func (r *Recorder) Restore(blob []byte) error {
	body, err := decodeSnap("recorder", blob)
	if err != nil {
		return err
	}
	var log []string
	for _, line := range nonEmptyLines(body) {
		cmd, err := strconv.Unquote(line)
		if err != nil {
			return fmt.Errorf("app: recorder restore: bad entry %q", line)
		}
		log = append(log, cmd)
	}
	r.log = log
	return nil
}

// --- Stack ---

var _ Durable = (*Stack)(nil)

// Snapshot implements Durable: one item per line, bottom first.
func (s *Stack) Snapshot() ([]byte, error) {
	var b strings.Builder
	for _, it := range s.items {
		fmt.Fprintf(&b, "%s\n", it)
	}
	return encodeSnap("stack", b.String()), nil
}

// Restore implements Durable.
func (s *Stack) Restore(blob []byte) error {
	body, err := decodeSnap("stack", blob)
	if err != nil {
		return err
	}
	s.items = nonEmptyLines(body)
	return nil
}

// sortedKeys returns m's keys sorted, for deterministic snapshot bodies.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
