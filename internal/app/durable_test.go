package app

import (
	"strings"
	"testing"
)

// populate drives each machine into a non-trivial state, exercising every
// command family so the snapshot has to carry real structure.
func populate(t *testing.T, name string, m Machine) {
	t.Helper()
	var cmds []string
	switch name {
	case "kv":
		cmds = []string{"set a 1", "set b 2", "set c 3", "del b", "cas a 1 9"}
	case "counter":
		cmds = []string{"add 7", "add -3", "add 100"}
	case "bank":
		cmds = []string{"open alice", "open bob", "deposit alice 100", "deposit bob 40", "transfer alice bob 25", "withdraw bob 10"}
	case "queue":
		cmds = []string{"enq x", "enq y", "enq z", "deq", "enq w"}
	case "recorder":
		cmds = []string{"first cmd", "second  cmd", "third"}
	case "stack":
		cmds = []string{"push a", "push b", "push c", "pop"}
	default:
		t.Fatalf("unknown machine %q", name)
	}
	for _, c := range cmds {
		m.Apply([]byte(c))
	}
}

// durableMachines are the machines under the snapshot/restore contract.
var durableMachines = []string{"kv", "counter", "bank", "queue", "recorder", "stack"}

// TestSnapshotRestoreIdentity: Restore(Snapshot()) on a fresh machine of
// the same kind must reproduce the fingerprint exactly — the property
// replica recovery's byte-identical-convergence check rests on.
func TestSnapshotRestoreIdentity(t *testing.T) {
	for _, name := range durableMachines {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			populate(t, name, src)
			blob, err := src.(Durable).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			dst, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the destination first: Restore must replace, not merge.
			populate(t, name, dst)
			dst.Apply([]byte("extra noise"))
			if err := dst.(Durable).Restore(blob); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if got, want := dst.Fingerprint(), src.Fingerprint(); got != want {
				t.Fatalf("fingerprint mismatch after restore:\n got %q\nwant %q", got, want)
			}
			// The restored machine must keep operating identically.
			r1, _ := src.Apply([]byte("probe probe"))
			r2, _ := dst.Apply([]byte("probe probe"))
			if string(r1) != string(r2) {
				t.Fatalf("post-restore divergence: %q vs %q", r1, r2)
			}
			if dst.Fingerprint() != src.Fingerprint() {
				t.Fatalf("post-restore apply diverged fingerprints")
			}
		})
	}
}

// TestRestoreEmptySnapshot: a snapshot of a pristine machine restores to a
// pristine machine.
func TestRestoreEmptySnapshot(t *testing.T) {
	for _, name := range durableMachines {
		name := name
		t.Run(name, func(t *testing.T) {
			src, _ := New(name)
			blob, err := src.(Durable).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			dst, _ := New(name)
			populate(t, name, dst)
			if err := dst.(Durable).Restore(blob); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if dst.Fingerprint() != src.Fingerprint() {
				t.Fatalf("empty restore left state behind: %q", dst.Fingerprint())
			}
		})
	}
}

// TestRestoreCorruptSnapshot: a flipped byte anywhere in the image must
// surface an error, never a silently wrong machine — and the failed
// restore must leave the machine's prior state intact enough to detect
// (we only assert the error here; recovery discards the machine on error).
func TestRestoreCorruptSnapshot(t *testing.T) {
	for _, name := range durableMachines {
		name := name
		t.Run(name, func(t *testing.T) {
			src, _ := New(name)
			populate(t, name, src)
			blob, err := src.(Durable).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Corrupt the body (past the header line) one byte at a time.
			headerEnd := strings.IndexByte(string(blob), '\n') + 1
			if headerEnd >= len(blob) {
				// Empty body (should not happen after populate).
				t.Fatalf("snapshot has no body: %q", blob)
			}
			for off := headerEnd; off < len(blob); off++ {
				tampered := append([]byte(nil), blob...)
				tampered[off] ^= 0x02
				dst, _ := New(name)
				if err := dst.(Durable).Restore(tampered); err == nil {
					t.Fatalf("corrupted snapshot (byte %d) restored without error", off)
				}
			}
			// Header tampering: wrong machine name and wrong magic both fail.
			other := "kv"
			if name == "kv" {
				other = "bank"
			}
			wrong, err := func() ([]byte, error) {
				m, _ := New(other)
				return m.(Durable).Snapshot()
			}()
			if err != nil {
				t.Fatal(err)
			}
			dst, _ := New(name)
			if err := dst.(Durable).Restore(wrong); err == nil {
				t.Fatalf("foreign machine snapshot restored without error")
			}
			if err := dst.(Durable).Restore([]byte("garbage")); err == nil {
				t.Fatalf("garbage restored without error")
			}
			if err := dst.(Durable).Restore(nil); err == nil {
				t.Fatalf("nil snapshot restored without error")
			}
		})
	}
}
