package app

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

func apply(t *testing.T, m Machine, cmd string) string {
	t.Helper()
	res, _ := m.Apply([]byte(cmd))
	return string(res)
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name)
		if err != nil || m == nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestRecorderPositions(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 5; i++ {
		if got := apply(t, r, fmt.Sprintf("cmd%d", i)); got != strconv.Itoa(i) {
			t.Fatalf("position = %s, want %d", got, i)
		}
	}
	if lg := r.Log(); len(lg) != 5 || lg[0] != "cmd1" {
		t.Fatalf("log = %v", lg)
	}
}

func TestRecorderUndo(t *testing.T) {
	r := NewRecorder()
	r.Apply([]byte("a"))
	_, undo := r.Apply([]byte("b"))
	undo()
	if got := apply(t, r, "c"); got != "2" {
		t.Fatalf("after undo position = %s, want 2", got)
	}
	if r.Fingerprint() != "a|c" {
		t.Fatalf("fingerprint = %q", r.Fingerprint())
	}
}

func TestStackFigure1Scenario(t *testing.T) {
	// Figure 1(a): stack holds [y]; seq(pop; push x): pop -> y, push x -> ok.
	s := NewStack()
	apply(t, s, "push y")
	if got := apply(t, s, "pop"); got != "y" {
		t.Fatalf("pop = %q, want y", got)
	}
	if got := apply(t, s, "push x"); got != "ok" {
		t.Fatalf("push = %q", got)
	}
	if s.Fingerprint() != "x" {
		t.Fatalf("state = %q, want x", s.Fingerprint())
	}
	// The inconsistent order seq(push x; pop) yields pop -> x instead:
	s2 := NewStack()
	apply(t, s2, "push y")
	apply(t, s2, "push x")
	if got := apply(t, s2, "pop"); got != "x" {
		t.Fatalf("reordered pop = %q, want x", got)
	}
}

func TestStackPopEmpty(t *testing.T) {
	s := NewStack()
	if got := apply(t, s, "pop"); got != "-" {
		t.Fatalf("pop on empty = %q, want -", got)
	}
	if got := apply(t, s, "peek"); got != "-" {
		t.Fatalf("peek on empty = %q, want -", got)
	}
}

func TestStackUndo(t *testing.T) {
	s := NewStack()
	apply(t, s, "push a")
	_, undoPush := s.Apply([]byte("push b"))
	res, undoPop := s.Apply([]byte("pop"))
	if string(res) != "b" {
		t.Fatalf("pop = %q", res)
	}
	undoPop()
	undoPush()
	if s.Fingerprint() != "a" {
		t.Fatalf("state after undos = %q, want a", s.Fingerprint())
	}
}

func TestKVOperations(t *testing.T) {
	kv := NewKV()
	if got := apply(t, kv, "get k"); got != "-" {
		t.Fatalf("get missing = %q", got)
	}
	apply(t, kv, "set k v1")
	if got := apply(t, kv, "get k"); got != "v1" {
		t.Fatalf("get = %q", got)
	}
	if got := apply(t, kv, "cas k v1 v2"); got != "ok" {
		t.Fatalf("cas = %q", got)
	}
	if got := apply(t, kv, "cas k v1 v3"); got != "fail" {
		t.Fatalf("stale cas = %q", got)
	}
	if got := apply(t, kv, "del k"); got != "ok" {
		t.Fatalf("del = %q", got)
	}
	if got := apply(t, kv, "del k"); got != "-" {
		t.Fatalf("del missing = %q", got)
	}
}

func TestKVUndoRestores(t *testing.T) {
	kv := NewKV()
	apply(t, kv, "set k v1")
	before := kv.Fingerprint()
	_, undoSet := kv.Apply([]byte("set k v2"))
	_, undoDel := kv.Apply([]byte("del k"))
	undoDel()
	undoSet()
	if kv.Fingerprint() != before {
		t.Fatalf("state = %q, want %q", kv.Fingerprint(), before)
	}
	// Undo of a set that created the key must remove it.
	_, undoCreate := kv.Apply([]byte("set fresh v"))
	undoCreate()
	if got := apply(t, kv, "get fresh"); got != "-" {
		t.Fatalf("undo of creating set left %q", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if got := apply(t, c, "add 5"); got != "5" {
		t.Fatalf("add = %q", got)
	}
	if got := apply(t, c, "add -2"); got != "3" {
		t.Fatalf("add = %q", got)
	}
	_, undo := c.Apply([]byte("add 100"))
	undo()
	if c.Value() != 3 {
		t.Fatalf("value = %d, want 3", c.Value())
	}
	if got := apply(t, c, "add x"); got[:3] != "ERR" {
		t.Fatalf("bad number = %q", got)
	}
}

func TestBankTransactions(t *testing.T) {
	b := NewBank()
	apply(t, b, "open alice")
	apply(t, b, "open bob")
	if got := apply(t, b, "open alice"); got != "ERR exists" {
		t.Fatalf("double open = %q", got)
	}
	if got := apply(t, b, "deposit alice 100"); got != "100" {
		t.Fatalf("deposit = %q", got)
	}
	if got := apply(t, b, "withdraw alice 150"); got != "ERR insufficient" {
		t.Fatalf("overdraw = %q", got)
	}
	if got := apply(t, b, "transfer alice bob 30"); got != "ok" {
		t.Fatalf("transfer = %q", got)
	}
	if got := apply(t, b, "balance alice"); got != "70" {
		t.Fatalf("alice = %q", got)
	}
	if got := apply(t, b, "balance bob"); got != "30" {
		t.Fatalf("bob = %q", got)
	}
	if b.TotalMoney() != 100 {
		t.Fatalf("money not conserved: %d", b.TotalMoney())
	}
	if got := apply(t, b, "transfer alice alice 10"); got != "ok" {
		t.Fatalf("self transfer = %q", got)
	}
	if got := apply(t, b, "balance alice"); got != "70" {
		t.Fatalf("self transfer changed balance: %q", got)
	}
}

func TestBankTransferRollback(t *testing.T) {
	b := NewBank()
	apply(t, b, "open a")
	apply(t, b, "open b")
	apply(t, b, "deposit a 50")
	before := b.Fingerprint()
	_, rollback := b.Apply([]byte("transfer a b 20"))
	rollback()
	if b.Fingerprint() != before {
		t.Fatalf("rollback incomplete: %q vs %q", b.Fingerprint(), before)
	}
}

func TestQueueFIFOAndUndo(t *testing.T) {
	q := NewQueue()
	apply(t, q, "enq a")
	apply(t, q, "enq b")
	if got := apply(t, q, "len"); got != "2" {
		t.Fatalf("len = %q", got)
	}
	res, undoDeq := q.Apply([]byte("deq"))
	if string(res) != "a" {
		t.Fatalf("deq = %q, want a (FIFO)", res)
	}
	undoDeq()
	if got := apply(t, q, "deq"); got != "a" {
		t.Fatalf("deq after undo = %q, want a again", got)
	}
	if got := apply(t, q, "deq"); got != "b" {
		t.Fatalf("deq = %q", got)
	}
	if got := apply(t, q, "deq"); got != "-" {
		t.Fatalf("deq empty = %q", got)
	}
}

func TestInvalidCommandsDeterministic(t *testing.T) {
	for _, name := range Names() {
		m, _ := New(name)
		m2, _ := New(name)
		for _, bad := range []string{"", "bogus", "push", "set onlykey", "add", "deq x y z extra"} {
			r1, _ := m.Apply([]byte(bad))
			r2, _ := m2.Apply([]byte(bad))
			if string(r1) != string(r2) {
				t.Errorf("%s: nondeterministic result for %q: %q vs %q", name, bad, r1, r2)
			}
		}
		if m.Fingerprint() != m2.Fingerprint() {
			t.Errorf("%s: states diverged on invalid commands", name)
		}
	}
}

// randomCmd generates a random valid-ish command for the named machine.
func randomCmd(name string, rng *rand.Rand) string {
	v := strconv.Itoa(rng.Intn(5))
	switch name {
	case "stack":
		return []string{"push " + v, "pop", "peek"}[rng.Intn(3)]
	case "kv":
		return []string{"set k" + v + " x" + v, "get k" + v, "del k" + v, "cas k" + v + " x0 y"}[rng.Intn(4)]
	case "counter":
		return "add " + strconv.Itoa(rng.Intn(21)-10)
	case "bank":
		return []string{"open a" + v, "deposit a" + v + " 10", "withdraw a" + v + " 5", "transfer a0 a1 3", "balance a" + v}[rng.Intn(5)]
	case "queue":
		return []string{"enq " + v, "deq", "len"}[rng.Intn(3)]
	default:
		return "cmd" + v
	}
}

// TestPropUndoRestoresState is the core OAR requirement: applying any
// sequence of commands and undoing them in reverse order must restore the
// exact prior state — for every machine.
func TestPropUndoRestoresState(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				rng := rand.New(rand.NewSource(seed))
				m, _ := New(name)
				// Some committed history first.
				for i := 0; i < rng.Intn(20); i++ {
					m.Apply([]byte(randomCmd(name, rng)))
				}
				before := m.Fingerprint()
				var undos []func()
				for i := 0; i < rng.Intn(20); i++ {
					_, undo := m.Apply([]byte(randomCmd(name, rng)))
					undos = append(undos, undo)
				}
				for i := len(undos) - 1; i >= 0; i-- {
					undos[i]()
				}
				if got := m.Fingerprint(); got != before {
					t.Fatalf("seed %d: undo did not restore state: %q vs %q", seed, got, before)
				}
			}
		})
	}
}

// TestPropDeterminism: two replicas applying the same command sequence end
// in identical states with identical results — the precondition for active
// replication.
func TestPropDeterminism(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				cmds := make([]string, 50)
				for i := range cmds {
					cmds[i] = randomCmd(name, rng)
				}
				a, _ := New(name)
				b, _ := New(name)
				for _, c := range cmds {
					ra, _ := a.Apply([]byte(c))
					rb, _ := b.Apply([]byte(c))
					if string(ra) != string(rb) {
						t.Fatalf("results diverged on %q: %q vs %q", c, ra, rb)
					}
				}
				if a.Fingerprint() != b.Fingerprint() {
					t.Fatalf("states diverged")
				}
			}
		})
	}
}

func TestReaderQueryMatchesApply(t *testing.T) {
	// For every machine implementing Reader, Query of a read-only command
	// must match Apply's result byte for byte and leave the state unchanged.
	cases := []struct {
		machine string
		setup   []string
		reads   []string
		writes  []string // commands Query must refuse
	}{
		{"kv", []string{"set a 1", "set b 2"}, []string{"get a", "get b", "get missing"}, []string{"set a 9", "del a", "cas a 1 2", "get", "get a b"}},
		{"counter", []string{"add 7"}, []string{"get"}, []string{"add 1", "get extra"}},
		{"bank", []string{"open acc", "deposit acc 50"}, []string{"balance acc", "balance ghost"}, []string{"deposit acc 1", "withdraw acc 1", "balance", "balance a b"}},
		{"queue", []string{"enq x", "enq y"}, []string{"peek", "len"}, []string{"enq z", "deq", "peek extra"}},
	}
	for _, tc := range cases {
		m, err := New(tc.machine)
		if err != nil {
			t.Fatal(err)
		}
		rd, ok := m.(Reader)
		if !ok {
			t.Fatalf("%s does not implement Reader", tc.machine)
		}
		for _, cmd := range tc.setup {
			m.Apply([]byte(cmd))
		}
		before := m.Fingerprint()
		for _, cmd := range tc.reads {
			got, ok := rd.Query([]byte(cmd))
			if !ok {
				t.Errorf("%s: Query(%q) refused a read-only command", tc.machine, cmd)
				continue
			}
			want, _ := m.Apply([]byte(cmd))
			if string(got) != string(want) {
				t.Errorf("%s: Query(%q) = %q, Apply = %q", tc.machine, cmd, got, want)
			}
		}
		if after := m.Fingerprint(); after != before {
			t.Errorf("%s: reads changed state: %q -> %q", tc.machine, before, after)
		}
		for _, cmd := range tc.writes {
			if res, ok := rd.Query([]byte(cmd)); ok {
				t.Errorf("%s: Query(%q) accepted a non-read command (= %q)", tc.machine, cmd, res)
			}
		}
	}
	// Machines without a read-only subset stay plain Machines.
	for _, name := range []string{"recorder", "stack"} {
		m, _ := New(name)
		if _, ok := m.(Reader); ok {
			t.Errorf("%s unexpectedly implements Reader", name)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue()
	if got := apply(t, q, "peek"); got != "-" {
		t.Fatalf("peek empty = %q", got)
	}
	apply(t, q, "enq a")
	apply(t, q, "enq b")
	if got := apply(t, q, "peek"); got != "a" {
		t.Fatalf("peek = %q, want a", got)
	}
	apply(t, q, "deq")
	if got := apply(t, q, "peek"); got != "b" {
		t.Fatalf("peek after deq = %q, want b", got)
	}
}
