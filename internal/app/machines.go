package app

import (
	"fmt"
	"strconv"
	"strings"
)

// --- Recorder ---

// Recorder is the state machine used by the correctness arguments of
// Appendix A: the reply to the i-th processed request is i itself. It also
// keeps the full command log, so tests can compare the exact histories of
// two replicas.
type Recorder struct {
	log []string
}

var _ Machine = (*Recorder)(nil)

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Apply implements Machine: the result is the 1-based processing position.
func (r *Recorder) Apply(cmd []byte) ([]byte, func()) {
	r.log = append(r.log, string(cmd))
	pos := len(r.log)
	return []byte(strconv.Itoa(pos)), func() {
		r.log = r.log[:len(r.log)-1]
	}
}

// Fingerprint implements Machine.
func (r *Recorder) Fingerprint() string { return strings.Join(r.log, "|") }

// Log returns the applied commands in order.
func (r *Recorder) Log() []string { return append([]string(nil), r.log...) }

// --- Stack ---

// Stack is the replicated stack of Figure 1 of the paper. Commands:
//
//	push <v>  -> result "ok"
//	pop       -> result <v> or "-" when empty (as in the figure)
//	peek      -> result <v> or "-"
type Stack struct {
	items []string
}

var _ Machine = (*Stack)(nil)

// NewStack creates an empty stack.
func NewStack() *Stack { return &Stack{} }

// Apply implements Machine.
func (s *Stack) Apply(cmd []byte) ([]byte, func()) {
	f := fields(cmd)
	if len(f) == 0 {
		return errResult("empty command"), noop
	}
	switch f[0] {
	case "push":
		if len(f) != 2 {
			return errResult("usage: push <v>"), noop
		}
		s.items = append(s.items, f[1])
		return []byte("ok"), func() { s.items = s.items[:len(s.items)-1] }
	case "pop":
		if len(s.items) == 0 {
			return []byte("-"), noop
		}
		v := s.items[len(s.items)-1]
		s.items = s.items[:len(s.items)-1]
		return []byte(v), func() { s.items = append(s.items, v) }
	case "peek":
		if len(s.items) == 0 {
			return []byte("-"), noop
		}
		return []byte(s.items[len(s.items)-1]), noop
	default:
		return errResult("unknown op %q", f[0]), noop
	}
}

// Fingerprint implements Machine.
func (s *Stack) Fingerprint() string { return strings.Join(s.items, "|") }

// Depth returns the current stack depth.
func (s *Stack) Depth() int { return len(s.items) }

// --- KV ---

// KV is a replicated key-value store. Commands:
//
//	set <k> <v>        -> "ok"
//	get <k>            -> <v> or "-"
//	del <k>            -> "ok" or "-"
//	cas <k> <old> <new> -> "ok" or "fail"
type KV struct {
	data map[string]string
}

var _ Machine = (*KV)(nil)

// NewKV creates an empty store.
func NewKV() *KV { return &KV{data: make(map[string]string)} }

// Apply implements Machine.
func (kv *KV) Apply(cmd []byte) ([]byte, func()) {
	f := fields(cmd)
	if len(f) == 0 {
		return errResult("empty command"), noop
	}
	switch f[0] {
	case "set":
		if len(f) != 3 {
			return errResult("usage: set <k> <v>"), noop
		}
		k, v := f[1], f[2]
		old, had := kv.data[k]
		kv.data[k] = v
		return []byte("ok"), func() {
			if had {
				kv.data[k] = old
			} else {
				delete(kv.data, k)
			}
		}
	case "get":
		if len(f) != 2 {
			return errResult("usage: get <k>"), noop
		}
		if v, ok := kv.data[f[1]]; ok {
			return []byte(v), noop
		}
		return []byte("-"), noop
	case "del":
		if len(f) != 2 {
			return errResult("usage: del <k>"), noop
		}
		k := f[1]
		old, had := kv.data[k]
		if !had {
			return []byte("-"), noop
		}
		delete(kv.data, k)
		return []byte("ok"), func() { kv.data[k] = old }
	case "cas":
		if len(f) != 4 {
			return errResult("usage: cas <k> <old> <new>"), noop
		}
		k, oldWant, newVal := f[1], f[2], f[3]
		cur, had := kv.data[k]
		if !had || cur != oldWant {
			return []byte("fail"), noop
		}
		kv.data[k] = newVal
		return []byte("ok"), func() { kv.data[k] = cur }
	default:
		return errResult("unknown op %q", f[0]), noop
	}
}

// Query implements Reader: "get <k>" is the read-only command.
func (kv *KV) Query(cmd []byte) ([]byte, bool) {
	f := fields(cmd)
	if len(f) != 2 || f[0] != "get" {
		return nil, false
	}
	if v, ok := kv.data[f[1]]; ok {
		return []byte(v), true
	}
	return []byte("-"), true
}

// Fingerprint implements Machine.
func (kv *KV) Fingerprint() string { return mapFingerprint(kv.data) }

// Len returns the number of keys.
func (kv *KV) Len() int { return len(kv.data) }

// --- Counter ---

// Counter is a replicated integer. Commands:
//
//	add <n> -> new value
//	get     -> value
type Counter struct {
	value int64
}

var _ Machine = (*Counter)(nil)

// NewCounter creates a counter at zero.
func NewCounter() *Counter { return &Counter{} }

// Apply implements Machine.
func (c *Counter) Apply(cmd []byte) ([]byte, func()) {
	f := fields(cmd)
	if len(f) == 0 {
		return errResult("empty command"), noop
	}
	switch f[0] {
	case "add":
		if len(f) != 2 {
			return errResult("usage: add <n>"), noop
		}
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return errResult("bad number %q", f[1]), noop
		}
		c.value += n
		return []byte(strconv.FormatInt(c.value, 10)), func() { c.value -= n }
	case "get":
		return []byte(strconv.FormatInt(c.value, 10)), noop
	default:
		return errResult("unknown op %q", f[0]), noop
	}
}

// Query implements Reader: "get" is the read-only command.
func (c *Counter) Query(cmd []byte) ([]byte, bool) {
	f := fields(cmd)
	if len(f) != 1 || f[0] != "get" {
		return nil, false
	}
	return []byte(strconv.FormatInt(c.value, 10)), true
}

// Fingerprint implements Machine.
func (c *Counter) Fingerprint() string { return strconv.FormatInt(c.value, 10) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.value }

// --- Bank ---

// Bank is the transactional application motivating Section 6 of the paper:
// each command is a transaction whose undo closure is its rollback. Commands:
//
//	open <acct>              -> "ok" or "ERR exists"
//	deposit <acct> <amt>     -> new balance
//	withdraw <acct> <amt>    -> new balance or "ERR insufficient"
//	transfer <from> <to> <amt> -> "ok" or "ERR ..."
//	balance <acct>           -> balance or "ERR no-account"
type Bank struct {
	accounts map[string]int64
}

var _ Machine = (*Bank)(nil)

// NewBank creates a bank with no accounts.
func NewBank() *Bank { return &Bank{accounts: make(map[string]int64)} }

// Apply implements Machine.
func (b *Bank) Apply(cmd []byte) ([]byte, func()) {
	f := fields(cmd)
	if len(f) == 0 {
		return errResult("empty command"), noop
	}
	switch f[0] {
	case "open":
		if len(f) != 2 {
			return errResult("usage: open <acct>"), noop
		}
		a := f[1]
		if _, ok := b.accounts[a]; ok {
			return errResult("exists"), noop
		}
		b.accounts[a] = 0
		return []byte("ok"), func() { delete(b.accounts, a) }
	case "deposit", "withdraw":
		if len(f) != 3 {
			return errResult("usage: %s <acct> <amt>", f[0]), noop
		}
		a := f[1]
		amt, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || amt < 0 {
			return errResult("bad amount %q", f[2]), noop
		}
		bal, ok := b.accounts[a]
		if !ok {
			return errResult("no-account"), noop
		}
		if f[0] == "withdraw" {
			if bal < amt {
				return errResult("insufficient"), noop
			}
			amt = -amt
		}
		b.accounts[a] = bal + amt
		return []byte(strconv.FormatInt(bal+amt, 10)), func() { b.accounts[a] = bal }
	case "transfer":
		if len(f) != 4 {
			return errResult("usage: transfer <from> <to> <amt>"), noop
		}
		from, to := f[1], f[2]
		amt, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil || amt < 0 {
			return errResult("bad amount %q", f[3]), noop
		}
		fromBal, okF := b.accounts[from]
		toBal, okT := b.accounts[to]
		if !okF || !okT {
			return errResult("no-account"), noop
		}
		if from == to {
			return []byte("ok"), noop
		}
		if fromBal < amt {
			return errResult("insufficient"), noop
		}
		b.accounts[from] = fromBal - amt
		b.accounts[to] = toBal + amt
		return []byte("ok"), func() {
			b.accounts[from] = fromBal
			b.accounts[to] = toBal
		}
	case "balance":
		if len(f) != 2 {
			return errResult("usage: balance <acct>"), noop
		}
		bal, ok := b.accounts[f[1]]
		if !ok {
			return errResult("no-account"), noop
		}
		return []byte(strconv.FormatInt(bal, 10)), noop
	default:
		return errResult("unknown op %q", f[0]), noop
	}
}

// Query implements Reader: "balance <acct>" is the read-only command.
func (b *Bank) Query(cmd []byte) ([]byte, bool) {
	f := fields(cmd)
	if len(f) != 2 || f[0] != "balance" {
		return nil, false
	}
	bal, ok := b.accounts[f[1]]
	if !ok {
		return errResult("no-account"), true
	}
	return []byte(strconv.FormatInt(bal, 10)), true
}

// Fingerprint implements Machine.
func (b *Bank) Fingerprint() string { return mapFingerprint(b.accounts) }

// TotalMoney returns the sum of all balances — an invariant under transfer.
func (b *Bank) TotalMoney() int64 {
	var sum int64
	for _, v := range b.accounts {
		sum += v
	}
	return sum
}

// --- Queue ---

// Queue is a replicated FIFO queue. Commands:
//
//	enq <v> -> "ok"
//	deq     -> <v> or "-"
//	peek    -> <v> or "-"
//	len     -> length
type Queue struct {
	items []string
	head  int
}

var _ Machine = (*Queue)(nil)

// NewQueue creates an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Apply implements Machine.
func (q *Queue) Apply(cmd []byte) ([]byte, func()) {
	f := fields(cmd)
	if len(f) == 0 {
		return errResult("empty command"), noop
	}
	switch f[0] {
	case "enq":
		if len(f) != 2 {
			return errResult("usage: enq <v>"), noop
		}
		q.items = append(q.items, f[1])
		return []byte("ok"), func() { q.items = q.items[:len(q.items)-1] }
	case "deq":
		if q.head == len(q.items) {
			return []byte("-"), noop
		}
		v := q.items[q.head]
		q.head++
		return []byte(v), func() { q.head-- }
	case "peek":
		if q.head == len(q.items) {
			return []byte("-"), noop
		}
		return []byte(q.items[q.head]), noop
	case "len":
		return []byte(strconv.Itoa(len(q.items) - q.head)), noop
	default:
		return errResult("unknown op %q", f[0]), noop
	}
}

// Query implements Reader: "peek" and "len" are the read-only commands.
func (q *Queue) Query(cmd []byte) ([]byte, bool) {
	f := fields(cmd)
	if len(f) != 1 {
		return nil, false
	}
	switch f[0] {
	case "peek":
		if q.head == len(q.items) {
			return []byte("-"), true
		}
		return []byte(q.items[q.head]), true
	case "len":
		return []byte(strconv.Itoa(len(q.items) - q.head)), true
	default:
		return nil, false
	}
}

// Fingerprint implements Machine.
func (q *Queue) Fingerprint() string {
	return fmt.Sprintf("%d:%s", q.head, strings.Join(q.items[q.head:], "|"))
}
