// Package app provides deterministic, undoable replicated state machines for
// the replication protocols in this repository.
//
// Active replication requires deterministic servers (Section 2.1 of the
// paper); the OAR protocol additionally requires that the effect of
// processing an optimistically delivered request can be undone if the
// message is Opt-undelivered (Section 4). Section 6 sketches the intended
// usage: each delivery opens a savepoint, Opt-undeliver rolls back to it,
// and surviving deliveries are committed when the epoch closes.
//
// Machines here implement exactly that contract: Apply executes a command
// and returns an undo closure reverting precisely that application. Undo
// closures must be invoked in reverse application order (they assume the
// machine is in the state Apply left it in, modulo later undone
// applications).
//
// Commands and results are whitespace-separated text — deterministic, easy
// to generate in workloads and to assert on in tests.
package app

import (
	"fmt"
	"sort"
	"strings"
)

// Machine is a deterministic state machine with per-command undo.
// Implementations are not safe for concurrent use: they are owned by a
// single server event loop, per the paper's execution model.
type Machine interface {
	// Apply executes cmd and returns its result plus an undo closure that
	// reverts this application. Apply must be deterministic: identical
	// command sequences yield identical results and states on any replica.
	// Invalid commands must also be handled deterministically (an error
	// result, not a panic) since every replica sees them.
	Apply(cmd []byte) (result []byte, undo func())
	// Fingerprint returns a deterministic digest of the current state, used
	// by tests and the trace checker to compare replicas.
	Fingerprint() string
}

// Reader is the optional read-only extension of Machine: machines that can
// answer some commands without changing state implement it, enabling the
// read fast path (replies served from the optimistic prefix with no position
// in the definitive order and no undo closure).
//
// Query answers cmd if and only if cmd is a well-formed read-only command
// for this machine, returning ok=false otherwise — including for malformed
// variants of read commands, which fall back to the ordered path so every
// replica produces the identical (error) result. When ok is true the result
// must be byte-identical to what Apply(cmd) would return in the same state,
// and the state must be unchanged.
type Reader interface {
	Query(cmd []byte) (result []byte, ok bool)
}

// New constructs a machine by name: "recorder", "stack", "kv", "counter",
// "bank" or "queue".
func New(name string) (Machine, error) {
	switch name {
	case "recorder":
		return NewRecorder(), nil
	case "stack":
		return NewStack(), nil
	case "kv":
		return NewKV(), nil
	case "counter":
		return NewCounter(), nil
	case "bank":
		return NewBank(), nil
	case "queue":
		return NewQueue(), nil
	default:
		return nil, fmt.Errorf("app: unknown machine %q", name)
	}
}

// Names lists the available machine names.
func Names() []string {
	return []string{"bank", "counter", "kv", "queue", "recorder", "stack"}
}

// errResult formats a deterministic error result.
func errResult(format string, args ...any) []byte {
	return []byte("ERR " + fmt.Sprintf(format, args...))
}

// fields splits a command into whitespace-separated tokens.
func fields(cmd []byte) []string {
	return strings.Fields(string(cmd))
}

// noop is the undo of a command that did not change state.
func noop() {}

// mapFingerprint renders a map deterministically.
func mapFingerprint[V any](m map[string]V) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, m[k])
	}
	return b.String()
}
