package oar_test

import (
	"context"
	"testing"
	"time"

	oar "repro"
	"repro/internal/workload"
)

// TestTCPWorkloadLatency runs the workload engine against a 3-replica
// cluster over real TCP sockets (the CI smoke step does the same against
// separate oar-server processes) and checks that both latency views — the
// engine's coordinated-omission-aware histogram and the TCP client's own
// send-to-adopt histogram — are filled and consistent.
func TestTCPWorkloadLatency(t *testing.T) {
	addrs := []string{"127.0.0.1:39561", "127.0.0.1:39562", "127.0.0.1:39563"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for rank := range addrs {
		rank := rank
		go func() {
			_ = oar.ListenAndServe(ctx, oar.ServerOptions{
				Rank:             rank,
				Peers:            addrs,
				Machine:          "kv",
				SuspicionTimeout: 200 * time.Millisecond,
			})
		}()
	}

	cli, err := oar.NewTCPClient(oar.ClientOptions{Servers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const requests, warmup = 160, 16
	spec := workload.Spec{
		Workers:  4,
		Requests: requests,
		Warmup:   warmup,
		Keys:     64,
		Dist:     workload.Zipfian,
		Seed:     5,
	}
	invoke := func(ctx context.Context, cmd []byte) error {
		_, err := cli.Invoke(ctx, cmd)
		return err
	}
	rctx, rcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer rcancel()
	rep, err := workload.Run(rctx, spec, []workload.Invoke{invoke}, nil)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Measured != requests || rep.Latency.Count != requests {
		t.Fatalf("measured %d (samples %d), want %d", rep.Measured, rep.Latency.Count, requests)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("malformed engine percentiles: %+v", rep.Latency)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}

	// The client's own histogram covers warmup too, and its percentiles
	// must bracket the engine's: the engine measures a subset of the same
	// invocations (closed loop: identical start/stop points), so its p50
	// cannot exceed the client's max and vice versa.
	cs := cli.Stats()
	if cs.Latency.Count != requests+warmup {
		t.Errorf("client recorded %d samples, want %d", cs.Latency.Count, requests+warmup)
	}
	if cs.Latency.P50 <= 0 || cs.Latency.Max < rep.Latency.P50 || rep.Latency.Max < cs.Latency.P50 {
		t.Errorf("client/engine percentiles disagree wildly: client %+v engine %+v", cs.Latency, rep.Latency)
	}
	if cs.FramesSent == 0 || cs.FramesReceived == 0 {
		t.Errorf("wire counters empty: %+v", cs)
	}
}
