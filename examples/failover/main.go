// Command failover shows OAR's two phases live: a stream of requests flows
// through the optimistic sequencer path; mid-stream the sequencer replica is
// crashed; the survivors suspect it, run the conservative (consensus) phase
// and continue under the next sequencer. Per-request latency makes the
// fail-over window visible — and every reply stays consistent.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	oar "repro"
)

func main() {
	cluster, err := oar.NewCluster(oar.ClusterOptions{
		Replicas:         3,
		Machine:          "recorder",
		SuspicionTimeout: 25 * time.Millisecond,
		NetworkDelay:     200 * time.Microsecond,
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatalf("attach client: %v", err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const total = 20
	const crashAt = 8
	fmt.Printf("streaming %d requests; crashing the sequencer after request %d\n\n", total, crashAt)
	for i := 1; i <= total; i++ {
		if i == crashAt+1 {
			cluster.CrashReplica(0)
			fmt.Println("  *** sequencer p0 crashed ***")
		}
		t0 := time.Now()
		reply, err := client.Invoke(ctx, []byte(fmt.Sprintf("request-%d", i)))
		if err != nil {
			log.Fatalf("invoke %d: %v", i, err)
		}
		marker := ""
		if reply.Endorsers == 3 {
			marker = "  <- conservative delivery (weight = whole group)"
		}
		fmt.Printf("  request %2d -> position %2d  latency %8v%s\n",
			i, reply.Pos, time.Since(t0).Round(100*time.Microsecond), marker)
		if reply.Pos != uint64(i) {
			log.Fatalf("position %d for request %d: total order broken", reply.Pos, i)
		}
	}

	s := cluster.Stats()
	fmt.Printf("\nepochs closed: %d, conservative deliveries: %d, rollbacks: %d\n",
		s.Epochs, s.ADelivered, s.OptUndelivered)
	fmt.Println("positions stayed dense and ordered across the crash: total order held (Prop. 5).")
}
