// Command replicated-stack replays Figure 1 of the paper on a replicated
// stack, running the SAME fault against both protocols:
//
//   - the Isis-style fixed-sequencer atomic broadcast of Section 2.4, whose
//     client adopts the first reply — and gets an answer the surviving
//     replicas later contradict (Figure 1(b): external inconsistency);
//   - OAR, whose weight-quorum client never adopts the doomed reply.
//
// The fault: with the stack holding [y], client c1's "pop" reaches only the
// sequencer; the sequencer processes it (pop -> y), replies, and crashes
// with its ordering messages undelivered; client c2's concurrent "push x"
// survives at the other replicas, which then order (push x; pop), so the
// pop really returns x.
//
//	go run ./examples/replicated-stack
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("Figure 1(b) fault: sequencer replies to the client, then crashes")
	fmt.Println("before its ordering message reaches the other replicas.")
	fmt.Println()

	for _, p := range []cluster.Protocol{cluster.FixedSeq, cluster.OAR} {
		out, err := experiments.RunFigure1b(p)
		if err != nil {
			log.Fatalf("%v scenario: %v", p, err)
		}
		fmt.Printf("protocol %-9s external inconsistencies: %d, order divergences: %d, rollbacks: %d\n",
			p.String()+":", out.External, out.TotalOrder, out.Undeliveries)
	}

	fmt.Println()
	fmt.Println("fixedseq: the client adopted 'pop -> y' from the dead sequencer while the")
	fmt.Println("          survivors executed (push x; pop) and got 'pop -> x' — the reply a")
	fmt.Println("          client acted on never happened. This is the paper's Figure 1(b).")
	fmt.Println("oar:      the sequencer's reply carried weight {p0} < majority, so the client")
	fmt.Println("          kept waiting; the conservative phase ordered the requests once, and")
	fmt.Println("          the adopted reply matches every correct replica (Proposition 7).")
}
