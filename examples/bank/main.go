// Command bank demonstrates the transactional usage of Section 6 of the
// paper: a replicated bank where every command is a transaction. Under OAR,
// optimistically processed transactions can be rolled back (Opt-undeliver)
// if the conservative phase reorders them — but a client-visible reply is
// never invalidated, so account balances reported to clients are always
// consistent with the final history, even across a sequencer crash.
//
//	go run ./examples/bank
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	oar "repro"
)

func main() {
	cluster, err := oar.NewCluster(oar.ClusterOptions{
		Replicas:         3,
		Machine:          "bank",
		SuspicionTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatalf("attach client: %v", err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	run := func(cmd string) string {
		reply, err := client.Invoke(ctx, []byte(cmd))
		if err != nil {
			log.Fatalf("invoke %q: %v", cmd, err)
		}
		fmt.Printf("  %-26s -> %s\n", cmd, reply.Result)
		return string(reply.Result)
	}

	fmt.Println("setting up accounts:")
	run("open alice")
	run("open bob")
	run("deposit alice 100")

	fmt.Println("\ntransfers through the healthy sequencer:")
	run("transfer alice bob 30")
	run("balance alice")
	run("balance bob")

	fmt.Println("\ncrashing the sequencer replica p0 mid-service...")
	cluster.CrashReplica(0)

	fmt.Println("transfers keep completing through the conservative phase + new sequencer:")
	run("transfer alice bob 20")
	run("transfer bob alice 5")
	alice := run("balance alice")
	bob := run("balance bob")

	if alice != "55" || bob != "45" {
		log.Fatalf("inconsistent balances: alice=%s bob=%s", alice, bob)
	}
	stats := cluster.Stats()
	fmt.Printf("\nmoney conserved (55 + 45 = 100) across fail-over; %d epochs closed, %d conservative deliveries\n",
		stats.Epochs, stats.ADelivered)
}
