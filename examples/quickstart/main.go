// Command quickstart is the smallest complete OAR program: a 3-replica
// in-process cluster running the replicated key-value store, one client, a
// few invocations. Every reply carries the total-order position at which
// the cluster processed the command and the number of replicas endorsing
// the reply — the weight of the paper's Figure 5 client rule.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	oar "repro"
)

func main() {
	cluster, err := oar.NewCluster(oar.ClusterOptions{
		Replicas: 3,
		Machine:  "kv",
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatalf("attach client: %v", err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	commands := []string{
		"set greeting hello",
		"set who world",
		"get greeting",
		"cas greeting hello goodbye",
		"get greeting",
		"del who",
	}
	for _, cmd := range commands {
		reply, err := client.Invoke(ctx, []byte(cmd))
		if err != nil {
			log.Fatalf("invoke %q: %v", cmd, err)
		}
		fmt.Printf("%-28s -> %-8s (position %d, endorsed by %d replicas)\n",
			cmd, reply.Result, reply.Pos, reply.Endorsers)
	}

	stats := cluster.Stats()
	fmt.Printf("\nprotocol activity: %d optimistic deliveries, %d conservative, %d undone, %d epochs closed\n",
		stats.OptDelivered, stats.ADelivered, stats.OptUndelivered, stats.Epochs)
	fmt.Println("failure-free runs never leave the optimistic phase — that is the paper's fast path.")
}
