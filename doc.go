// Package oar is a production-oriented Go implementation of Optimistic
// Active Replication (Felber & Schiper, ICDCS 2001): active replication over
// an optimistic, sequencer-based atomic broadcast that falls back to a
// consensus-based conservative phase when the sequencer is suspected — and,
// unlike classic sequencer protocols, guarantees that clients never adopt a
// reply that is later invalidated (external consistency), even though
// individual replicas may temporarily diverge and roll back.
//
// # Quick start
//
// Run a replicated service in-process:
//
//	cluster, err := oar.NewCluster(oar.ClusterOptions{Replicas: 3, Machine: "kv"})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	client, err := cluster.NewClient()
//	if err != nil { ... }
//	reply, err := client.Invoke(ctx, []byte("set greeting hello"))
//	fmt.Printf("%s at position %d, endorsed by %d replicas\n",
//		reply.Result, reply.Pos, reply.Endorsers)
//
// Or deploy replicas as separate processes over TCP with ListenAndServe and
// NewTCPClient (see cmd/oar-server and cmd/oar-client).
//
// # Message batching
//
// The optimistic hot path is batched end-to-end: each replica coalesces the
// messages of one event-loop round (ordering messages, relays, replies,
// consensus traffic) into one frame per destination, clients coalesce
// concurrent invocations per server, and the TCP transport writes frames
// through a buffered writer that flushes on idle. Two knobs tune the
// sequencer's ordering batches (ClusterOptions/ServerOptions):
//
//   - BatchWindow: 0 (default) batches adaptively with no added latency —
//     whatever one round accumulated is ordered as one message. A positive
//     window holds small batches back to grow them, trading latency for
//     throughput. A negative window disables the batching layer (the
//     benchmark control).
//   - MaxBatch: caps requests per ordering message (0 = a generous default,
//     1 = one ordering message per request).
//
// # Keyspace sharding
//
// One ordering group's throughput is capped by its sequencer, so the
// keyspace can be partitioned over several independent groups
// (ClusterOptions.Shards): each shard is a complete Replicas-sized group
// of the selected protocol, and clients route every command to the group
// owning its key (an FNV hash of the command's key token — the kv/bank
// key, else the first token). Ordering and Propositions 1–7 hold per
// group — exactly the contract of a key-partitioned service — and group
// identity is explicit on the wire, so misrouted traffic is dropped rather
// than misordered. Crash failures stall only the affected group until its
// detector fires.
//
// # Latency observability
//
// Response time — not just throughput — is what optimistic delivery is
// for, so every client in the system measures it unconditionally: each
// successful Invoke records its submit-to-adopted-reply time into a
// lock-free log-bucket histogram (~4% resolution). Cluster-wide
// percentiles are exposed as Stats.Latency (Count, Mean, P50/P90/P99,
// Min/Max), per ordering group as Cluster.ShardLatency, and per TCP client
// as TCPClient.Stats (which adds wire frame/byte counters). Histograms
// merge exactly across workers, shards and processes, so aggregated
// percentiles are true percentiles, not averages of percentiles.
//
// The workload engine behind the numbers (closed and open loop
// disciplines, coordinated-omission-corrected open-loop sampling,
// uniform/zipfian key skew, read/write mix, warmup, deterministic seeds)
// drives both the experiment suite (oar-bench, experiment E11) and real
// TCP deployments (cmd/oar-loadgen); EXPERIMENTS.md documents the
// measurement methodology.
//
// # Replicated state machines
//
// Any deterministic state machine with per-command undo can be replicated
// (the Machine interface). Built-ins: "kv", "stack", "queue", "counter",
// "bank" (transactional, per Section 6 of the paper) and "recorder".
//
// # Guarantees
//
// For up to ⌊(n-1)/2⌋ crash failures among n replicas (plus arbitrary false
// suspicions), the service provides: validity, at-most-once and
// at-least-once request handling, total order of request processing, and
// external consistency of adopted replies — Propositions 1–7 of the paper,
// all of which are re-verified mechanically on every test run by the
// internal trace checker.
//
// # Architecture
//
// The facade wraps the full protocol stack in internal/: the sequence
// algebra (mseq), wire codec (wire, proto), transports (memnet, tcpnet),
// reliable multicast (rmcast), failure detectors (fd), Maj-validity
// consensus (consensus), conservative ordering (cnsvorder), the OAR client
// and server (core), baselines (baseline/...), and the experiment harness
// (experiments). Every ordering protocol plugs into the runtime through the
// backend registry (internal/backend) and is selected by name
// (ClusterOptions.Protocol); the paper's protocol, "oar", is the default.
// See DESIGN.md for the full inventory and EXPERIMENTS.md for the
// reproduction results.
package oar
