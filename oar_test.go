package oar_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	oar "repro"
)

func TestClusterQuickstart(t *testing.T) {
	c, err := oar.NewCluster(oar.ClusterOptions{Replicas: 3, Machine: "kv"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := cli.Invoke(ctx, []byte("set greeting hello")); err != nil {
		t.Fatal(err)
	}
	reply, err := cli.Invoke(ctx, []byte("get greeting"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Result) != "hello" {
		t.Fatalf("get = %q", reply.Result)
	}
	if reply.Pos != 2 {
		t.Fatalf("pos = %d, want 2", reply.Pos)
	}
	if reply.Endorsers < 2 {
		t.Fatalf("endorsers = %d, want >= majority", reply.Endorsers)
	}
	s := c.Stats()
	if s.OptDelivered == 0 {
		t.Error("no optimistic deliveries recorded")
	}
	if s.Latency.Count != 2 || s.Latency.P50 <= 0 || s.Latency.P99 < s.Latency.P50 {
		t.Errorf("latency not surfaced through Stats: %+v", s.Latency)
	}
}

func TestClusterFailover(t *testing.T) {
	c, err := oar.NewCluster(oar.ClusterOptions{
		Replicas:         3,
		Machine:          "counter",
		SuspicionTimeout: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := cli.Invoke(ctx, []byte("add 1")); err != nil {
		t.Fatal(err)
	}
	c.CrashReplica(0)
	reply, err := cli.Invoke(ctx, []byte("add 1"))
	if err != nil {
		t.Fatalf("invoke after crash: %v", err)
	}
	if string(reply.Result) != "2" {
		t.Fatalf("counter = %q, want 2", reply.Result)
	}
	if s := c.Stats(); s.Epochs == 0 {
		t.Error("fail-over closed no epochs")
	}
}

func TestShardedCluster(t *testing.T) {
	c, err := oar.NewCluster(oar.ClusterOptions{Replicas: 3, Shards: 2, Machine: "kv"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", c.Shards())
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const keys = 12
	for i := 0; i < keys; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set key%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		reply, err := cli.Invoke(ctx, []byte(fmt.Sprintf("get key%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(reply.Result) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get key%d = %q", i, reply.Result)
		}
		if reply.Endorsers < 2 {
			t.Fatalf("endorsers = %d, want >= majority", reply.Endorsers)
		}
	}
	s := c.Stats()
	// 2 writes+reads per key at 3 replicas each, spread over the shards.
	if s.OptDelivered != 3*2*keys {
		t.Errorf("OptDelivered = %d, want %d", s.OptDelivered, 3*2*keys)
	}
	if s.SeqOrdersSent == 0 || s.FramesSent == 0 {
		t.Errorf("batching counters not surfaced: %+v", s)
	}
	if s.Latency.Count != 2*keys {
		t.Errorf("Latency.Count = %d, want %d", s.Latency.Count, 2*keys)
	}
	var perShard uint64
	for sh := 0; sh < c.Shards(); sh++ {
		perShard += c.ShardLatency(sh).Count
	}
	if perShard != 2*keys {
		t.Errorf("shard latency counts sum to %d, want %d", perShard, 2*keys)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := oar.NewCluster(oar.ClusterOptions{}); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := oar.NewCluster(oar.ClusterOptions{Replicas: 3, Machine: "nope"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if len(oar.Machines()) == 0 {
		t.Error("no machines listed")
	}
}

func TestTCPDeployment(t *testing.T) {
	// Three replica "processes" over real sockets plus a TCP client.
	addrs := []string{"127.0.0.1:39551", "127.0.0.1:39552", "127.0.0.1:39553"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for rank := range addrs {
		rank := rank
		go func() {
			_ = oar.ListenAndServe(ctx, oar.ServerOptions{
				Rank:             rank,
				Peers:            addrs,
				Machine:          "kv",
				SuspicionTimeout: 200 * time.Millisecond,
			})
		}()
	}

	cli, err := oar.NewTCPClient(oar.ClientOptions{Servers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	for i := 1; i <= 3; i++ {
		reply, err := cli.Invoke(ictx, []byte(fmt.Sprintf("set k%d v%d", i, i)))
		if err != nil {
			t.Fatalf("tcp invoke %d: %v", i, err)
		}
		if reply.Pos != uint64(i) {
			t.Fatalf("pos = %d, want %d", reply.Pos, i)
		}
	}
	cs := cli.Stats()
	if cs.Latency.Count != 3 || cs.Latency.P50 <= 0 || cs.Latency.Max < cs.Latency.P50 {
		t.Errorf("TCP client latency not recorded: %+v", cs.Latency)
	}
	if cs.FramesSent == 0 || cs.FramesReceived == 0 || cs.BytesSent == 0 || cs.BytesReceived == 0 {
		t.Errorf("TCP wire counters empty: %+v", cs)
	}
}

func TestServerOptionsValidation(t *testing.T) {
	if err := oar.ListenAndServe(context.Background(), oar.ServerOptions{}); err == nil {
		t.Error("empty server options accepted")
	}
	if _, err := oar.NewTCPClient(oar.ClientOptions{}); err == nil {
		t.Error("empty client options accepted")
	}
}
