# make check is the repository's one gate: CI runs it verbatim, and it is
# what a contributor runs before pushing. Each sub-target also works alone.
#
# staticcheck and govulncheck are optional locally (the targets skip with a
# note when the tools are not installed); CI installs both, so findings fail
# the build there.

.PHONY: check build vet oar-vet staticcheck test-race framecheck fuzz-smoke vuln

check: build vet staticcheck test-race

build:
	go build ./...

# bin/oar-vet is the repo's own analysis suite (internal/analysis): framelease,
# retained, atomicfield, grouptag. It runs here as a `go vet` backend so the
# findings integrate with vet's per-package caching.
oar-vet:
	go build -o bin/oar-vet ./cmd/oar-vet

vet: oar-vet
	go vet ./...
	go vet -vettool=$(CURDIR)/bin/oar-vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs and enforces it)"; \
	fi

# The race suite runs twice: single-core (GOMAXPROCS=1 forces maximal
# goroutine interleaving on one P — the scheduler preempts at suspension
# points other schedules never hit) and multi-core (GOMAXPROCS=4 gives the
# pipelined replica stages real parallelism, so ring hand-offs race for
# real). Both matter: each schedule class finds bugs the other misses.
test-race:
	GOMAXPROCS=1 go test -race ./...
	GOMAXPROCS=4 go test -race ./...

# framecheck rebuilds the transport with per-frame ownership tracking: a
# double Release panics with the acquisition stack. Combined with -race this
# catches both failure modes of the pooled-frame recycle path. core is in
# the list for the pipelined replica loop, whose stages hand pooled frames
# across goroutines through SPSC rings.
framecheck:
	go test -race -tags=framecheck ./internal/transport/ ./internal/memnet/ ./internal/core/

# fuzz-smoke runs every fuzz target for 30s on top of its seed corpus
# (testdata/fuzz/). A new crasher is written back into testdata/fuzz/ by the
# fuzzer; commit it as a regression seed alongside the fix.
fuzz-smoke:
	@set -e; for t in \
		FuzzExpandBatch:./internal/transport \
		FuzzUnmarshalBatch:./internal/proto \
		FuzzUnmarshal:./internal/proto \
		FuzzKeyFunc:./internal/shard \
		FuzzRouter:./internal/shard \
		FuzzReader:./internal/wire; do \
		name=$${t%%:*}; pkg=$${t##*:}; \
		echo "==> $$name ($$pkg)"; \
		go test -run='^$$' -fuzz="^$$name$$" -fuzztime=30s $$pkg; \
	done

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI installs and enforces it)"; \
	fi
