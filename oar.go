package oar

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/memnet"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/tcpnet"
)

// Reply is the outcome of a replicated invocation, as adopted by the client
// under the weight-quorum rule of the paper (Figure 5).
type Reply struct {
	// Result is the state machine's output for the command.
	Result []byte
	// Pos is the position at which the command was processed in the total
	// order — identical at every correct replica.
	Pos uint64
	// Epoch is the protocol epoch that served the request.
	Epoch uint64
	// Endorsers is the number of replicas known to endorse this reply at
	// adoption time (|W| of the paper; n for conservatively delivered
	// requests).
	Endorsers int
}

func toReply(r proto.Reply) Reply {
	return Reply{
		Result:    r.Result,
		Pos:       r.Pos,
		Epoch:     r.Epoch,
		Endorsers: r.Weight.Count(),
	}
}

// Client invokes commands on a replicated service.
type Client struct {
	inner cluster.Invoker
}

// Invoke submits a command and blocks until a consistent reply is adopted
// or ctx ends.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (Reply, error) {
	r, err := c.inner.Invoke(ctx, cmd)
	if err != nil {
		return Reply{}, err
	}
	return toReply(r), nil
}

// InvokeRead submits a read-only command on the read fast path: replicas
// answer inline from their optimistic prefix (zero ordering messages) and
// the reply is adopted only once a majority of the group has answered at a
// compatible prefix, so the read is consistent with the definitive order,
// monotonic, and read-your-writes for this client. Commands that are not
// well-formed reads of the selected machine — and machines without a
// read-only surface — transparently fall back to the ordered path.
func (c *Client) InvokeRead(ctx context.Context, cmd []byte) (Reply, error) {
	ri, ok := c.inner.(interface {
		InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error)
	})
	if !ok {
		return c.Invoke(ctx, cmd)
	}
	r, err := ri.InvokeRead(ctx, cmd)
	if err != nil {
		return Reply{}, err
	}
	return toReply(r), nil
}

// Close shuts the client down.
func (c *Client) Close() { c.inner.Stop() }

// Machines lists the built-in replicated state machines.
func Machines() []string { return app.Names() }

// ClusterOptions configures an in-process cluster.
type ClusterOptions struct {
	// Replicas is the group size n (1..64). At most ⌊(n-1)/2⌋ crash
	// failures are tolerated — per ordering group.
	Replicas int
	// Protocol names the ordering backend the cluster runs (default "oar",
	// the paper's optimistic active replication). The baselines ("fixedseq",
	// "ctab") and any backend registered with internal/backend are valid;
	// every option below that the protocol understands applies unchanged,
	// including Shards.
	Protocol string
	// Shards is the number of independent ordering groups the keyspace is
	// partitioned over (default 1). Each shard is a complete Replicas-sized
	// OAR group; clients returned by NewClient route every command to the
	// group owning its key (hash of the command's key token), so total
	// ordering — and therefore throughput — scales out per key subspace
	// while each subspace keeps the paper's full guarantees.
	Shards int
	// Machine names the replicated state machine (see Machines); default
	// "kv".
	Machine string
	// SuspicionTimeout is the ◊S heartbeat timeout (default 25ms). Lower
	// values give faster fail-over and more false suspicions — the paper's
	// central trade-off; false suspicions cost performance, never
	// consistency.
	SuspicionTimeout time.Duration
	// NetworkDelay adds a simulated one-way latency to every message
	// (default 0: in-memory speed).
	NetworkDelay time.Duration
	// EpochRequestLimit bounds the optimistic epoch length (Section 5.3
	// Remark); 0 disables periodic garbage collection.
	EpochRequestLimit int
	// BatchWindow is how long the sequencer may hold pending requests to
	// grow an ordering batch. 0 (default) batches adaptively with no added
	// latency: everything that arrived in one event-loop round is ordered as
	// one message. A positive window trades latency for larger batches.
	BatchWindow time.Duration
	// MaxBatch caps requests per ordering message (0 = a generous default;
	// 1 = one ordering message per request, the unbatched behavior).
	MaxBatch int
	// AutoTune replaces the static send-side hold with a closed-loop
	// controller that continuously adjusts the effective batch window
	// between a latency floor (idle: flush immediately) and a throughput
	// ceiling. Requires batching (BatchWindow >= 0).
	AutoTune bool
	// Pipeline runs each replica's event loop as decode → order → send
	// stages on separate goroutines connected by lock-free rings, so a
	// replica can use several cores. Protocol semantics are unchanged.
	Pipeline bool
	// WALRoot, when non-empty, gives every replica a write-ahead log under
	// that directory (one subdirectory per shard and replica): definitive
	// deliveries and epoch boundaries are fsynced per closed epoch and
	// replayed — snapshot first, then the log tail — when a crashed replica
	// is restarted, before it catches up from peers and re-enters ordering.
	// Empty disables durability (crashed replicas stay down).
	WALRoot string
	// SnapshotEvery takes a state-machine snapshot every that many closed
	// epochs (0 = a protocol default, negative = never). Snapshots bound
	// both the on-disk log and the catch-up tail.
	SnapshotEvery int
}

// Cluster is an in-process replica group, for embedding a replicated
// service in one binary or for testing.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster boots an in-process OAR cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Replicas <= 0 {
		return nil, fmt.Errorf("oar: Replicas must be positive")
	}
	if opts.Machine == "" {
		opts.Machine = "kv"
	}
	inner, err := cluster.New(cluster.Options{
		Protocol:          cluster.Protocol(opts.Protocol),
		N:                 opts.Replicas,
		Shards:            opts.Shards,
		Machine:           opts.Machine,
		FDTimeout:         opts.SuspicionTimeout,
		EpochRequestLimit: opts.EpochRequestLimit,
		BatchWindow:       opts.BatchWindow,
		MaxBatch:          opts.MaxBatch,
		AutoTune:          opts.AutoTune,
		Pipeline:          opts.Pipeline,
		WALRoot:           opts.WALRoot,
		SnapshotEvery:     opts.SnapshotEvery,
		Net: memnet.Options{
			MinDelay: opts.NetworkDelay,
			MaxDelay: opts.NetworkDelay,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// NewClient attaches a new client to the cluster. With Shards > 1 the
// client routes each command to the ordering group owning its key.
func (c *Cluster) NewClient() (*Client, error) {
	cli, err := c.inner.NewClient()
	if err != nil {
		return nil, err
	}
	return &Client{inner: cli}, nil
}

// Shards returns the number of independent ordering groups.
func (c *Cluster) Shards() int { return c.inner.Shards() }

// CrashReplica fault-injects a crash of shard 0's replica i (for testing
// fail-over). With Shards > 1 use CrashShardReplica to target any group.
func (c *Cluster) CrashReplica(i int) { c.inner.Crash(0, i) }

// CrashShardReplica fault-injects a crash of shard s's replica i. The other
// ordering groups neither see the crash nor depend on the crashed replica.
func (c *Cluster) CrashShardReplica(s, i int) { c.inner.Crash(s, i) }

// LatencyStats summarizes client-observed end-to-end response times —
// submit to adopted reply, the quantity the paper's optimistic delivery
// exists to cut. Quantiles carry the underlying histogram's ~4% log-bucket
// resolution; Count is the number of successful invocations measured.
type LatencyStats struct {
	// Count is the number of measured (successful) invocations.
	Count uint64
	// Mean is the average response time.
	Mean time.Duration
	// P50, P90 and P99 are response-time percentiles.
	P50 time.Duration
	P90 time.Duration
	P99 time.Duration
	// Min and Max are the observed extremes.
	Min time.Duration
	Max time.Duration
}

func toLatencyStats(s metrics.Snapshot) LatencyStats {
	return LatencyStats{
		Count: s.Count,
		Mean:  s.Mean,
		P50:   s.P50,
		P90:   s.P90,
		P99:   s.P99,
		Min:   s.Min,
		Max:   s.Max,
	}
}

// Stats summarizes protocol activity across all replicas of all shards.
type Stats struct {
	// Delivered counts definitive command deliveries, whatever the
	// protocol (for OAR, rollbacks are already deducted).
	Delivered uint64
	// OptDelivered counts optimistic deliveries (the fast path; OAR only).
	OptDelivered uint64
	// OptUndelivered counts rolled-back deliveries.
	OptUndelivered uint64
	// ADelivered counts conservative (consensus-ordered) deliveries.
	ADelivered uint64
	// Epochs counts completed conservative phases.
	Epochs uint64
	// SeqOrdersSent counts sequencer ordering messages; under batching one
	// ordering message carries many requests.
	SeqOrdersSent uint64
	// FramesSent counts transport frames on the in-memory networks; the
	// batching layer's whole point is keeping this below the logical
	// message count.
	FramesSent uint64
	// BatchedMessages counts the kind-tagged messages carried inside
	// proto.Batch envelopes (the coalesced share of the traffic).
	BatchedMessages uint64
	// BatchFrames counts the frames the replicas' send batchers shipped and
	// BatchedSends the protocol messages those frames carried — their ratio
	// is the server-side coalescing factor (messages per frame).
	BatchFrames  uint64
	BatchedSends uint64
	// EffectiveBatchWindow is the send-side hold window in effect at
	// snapshot time: the AutoTune controller's current output (maximum
	// across replicas), or the static BatchWindow.
	EffectiveBatchWindow time.Duration
	// ReadsServed counts read-only requests answered on the read fast path
	// (inline from a replica's prefix, zero ordering messages);
	// ReadFallbacks counts reads the replicas pushed onto the ordered path.
	ReadsServed   uint64
	ReadFallbacks uint64
	// Latency summarizes the response times of every invocation made through
	// the cluster's clients, aggregated over all shards. Every client the
	// cluster hands out is measured unconditionally (recording is one
	// lock-free histogram increment), so p50/p99 are always available — no
	// instrumentation opt-in.
	Latency LatencyStats
	// ReadLatency summarizes the response times of fast-path reads
	// (InvokeRead calls), split out from Latency so the read/write gap is
	// directly observable.
	ReadLatency LatencyStats
}

// Stats returns cluster-wide protocol counters, aggregated over all shards.
func (c *Cluster) Stats() Stats {
	s := c.inner.TotalStats()
	n := c.inner.NetTotal()
	return Stats{
		Delivered:            s.Delivered,
		OptDelivered:         s.OptDelivered,
		OptUndelivered:       s.OptUndelivered,
		ADelivered:           s.ADelivered,
		Epochs:               s.Epochs,
		SeqOrdersSent:        s.SeqOrdersSent,
		FramesSent:           n.MessagesSent,
		BatchedMessages:      n.BatchedMessages,
		BatchFrames:          s.BatchFrames,
		BatchedSends:         s.BatchedSends,
		EffectiveBatchWindow: time.Duration(s.BatchWindowNS),
		ReadsServed:          s.ReadsServed,
		ReadFallbacks:        s.ReadFallbacks,
		Latency:              toLatencyStats(c.inner.Latency()),
		ReadLatency:          toLatencyStats(c.inner.ReadLatency()),
	}
}

// ShardLatency summarizes the response times of requests served by ordering
// group s — the per-group view of Stats.Latency, useful for spotting load
// skew under non-uniform key distributions.
func (c *Cluster) ShardLatency(s int) LatencyStats {
	return toLatencyStats(c.inner.ShardLatency(s))
}

// Close stops all replicas and clients.
func (c *Cluster) Close() { c.inner.Stop() }

// ServerOptions configures one TCP replica process.
type ServerOptions struct {
	// Rank is this replica's index in Peers (0-based).
	Rank int
	// Peers lists the listen addresses of ALL replicas, in rank order.
	Peers []string
	// Listen is the local bind address; defaults to Peers[Rank].
	Listen string
	// Machine names the replicated state machine (default "kv").
	Machine string
	// GroupID is the ordering group this replica serves (default 0). Several
	// groups can be deployed side by side — each group's replicas list only
	// their own group's Peers — and clients of one group are ignored by the
	// others even if misconfigured to reach them.
	GroupID int
	// SuspicionTimeout is the ◊S heartbeat timeout (default 100ms — WAN-ish
	// safety margin; tune down on a LAN).
	SuspicionTimeout time.Duration
	// EpochRequestLimit as in ClusterOptions.
	EpochRequestLimit int
	// BatchWindow and MaxBatch as in ClusterOptions.
	BatchWindow time.Duration
	MaxBatch    int
	// AutoTune and Pipeline as in ClusterOptions.
	AutoTune bool
	Pipeline bool
	// WALDir, when non-empty, makes the replica durable: definitive
	// deliveries and epoch boundaries are written to a segmented,
	// CRC-checked write-ahead log there, fsynced once per closed epoch. A
	// boot counter persisted in the same directory detects restarts: a
	// rebooted replica replays its latest snapshot plus the log tail,
	// catches the remainder up from its peers, and only then re-enters
	// ordering. Empty disables durability.
	WALDir string
	// SnapshotEvery as in ClusterOptions (only meaningful with WALDir).
	SnapshotEvery int
	// StatsAddr, when non-empty, serves this replica's counters as JSON
	// over HTTP at GET /stats on that address (see ServerReport) — the hook
	// load generators use to report server-observed coalescing.
	StatsAddr string
}

// ServerReport is the JSON document a replica's stats endpoint serves:
// protocol counters, the send batcher's coalescing counters, and the wire
// traffic the TCP endpoint moved.
type ServerReport struct {
	// Delivered counts definitive command deliveries (rollbacks deducted).
	Delivered uint64 `json:"delivered"`
	// OptDelivered / OptUndelivered / ADelivered / Epochs are the OAR phase
	// counters.
	OptDelivered   uint64 `json:"opt_delivered"`
	OptUndelivered uint64 `json:"opt_undelivered"`
	ADelivered     uint64 `json:"a_delivered"`
	Epochs         uint64 `json:"epochs"`
	// SeqOrdersSent counts sequencer ordering messages.
	SeqOrdersSent uint64 `json:"seq_orders_sent"`
	// BatchFrames counts frames the send batcher shipped; BatchedSends the
	// protocol messages they carried (their ratio is messages per frame).
	BatchFrames  uint64 `json:"batch_frames"`
	BatchedSends uint64 `json:"batched_sends"`
	// BatchWindowNS is the effective send-side hold window in nanoseconds
	// at snapshot time (the AutoTune controller's output, or the static
	// window).
	BatchWindowNS int64 `json:"batch_window_ns"`
	// ReadsServed counts reads answered on the fast path (zero ordering
	// messages); ReadFallbacks counts reads pushed onto the ordered path.
	ReadsServed   uint64 `json:"reads_served"`
	ReadFallbacks uint64 `json:"read_fallbacks"`
	// FramesSent/FramesReceived/BytesSent/BytesReceived are the TCP
	// endpoint's wire counters.
	FramesSent     uint64 `json:"frames_sent"`
	FramesReceived uint64 `json:"frames_received"`
	BytesSent      uint64 `json:"bytes_sent"`
	BytesReceived  uint64 `json:"bytes_received"`
}

// ListenAndServe runs one OAR replica over TCP until ctx is cancelled.
func ListenAndServe(ctx context.Context, opts ServerOptions) error {
	n := len(opts.Peers)
	if n == 0 || opts.Rank < 0 || opts.Rank >= n {
		return fmt.Errorf("oar: rank %d out of range for %d peers", opts.Rank, n)
	}
	if opts.Machine == "" {
		opts.Machine = "kv"
	}
	if opts.SuspicionTimeout <= 0 {
		opts.SuspicionTimeout = 100 * time.Millisecond
	}
	listen := opts.Listen
	if listen == "" {
		listen = opts.Peers[opts.Rank]
	}
	group := proto.Group(n)
	peers := make(map[proto.NodeID]string, n)
	for i, addr := range opts.Peers {
		if i != opts.Rank {
			peers[group[i]] = addr
		}
	}
	node, err := tcpnet.New(tcpnet.Config{
		ID:        group[opts.Rank],
		Listen:    listen,
		Peers:     peers,
		Advertise: opts.Peers[opts.Rank],
	})
	if err != nil {
		return err
	}
	defer node.Close()

	machine, err := app.New(opts.Machine)
	if err != nil {
		return err
	}
	var incarnation uint64
	if opts.WALDir != "" {
		if incarnation, err = nextIncarnation(opts.WALDir); err != nil {
			return fmt.Errorf("oar: wal dir: %w", err)
		}
	}
	srv, err := core.NewServer(core.ServerConfig{
		ID:                group[opts.Rank],
		Group:             group,
		GroupID:           proto.GroupID(opts.GroupID), //nolint:gosec // operator-supplied small int
		Node:              node,
		Machine:           machine,
		Detector:          fd.NewTimeout(opts.SuspicionTimeout, group, time.Now()),
		HeartbeatInterval: opts.SuspicionTimeout / 4,
		EpochRequestLimit: opts.EpochRequestLimit,
		BatchWindow:       opts.BatchWindow,
		MaxBatch:          opts.MaxBatch,
		AutoTune:          opts.AutoTune,
		Pipeline:          opts.Pipeline,
		WALDir:            opts.WALDir,
		SnapshotEvery:     opts.SnapshotEvery,
		Incarnation:       incarnation,
		Recovering:        incarnation > 0,
	})
	if err != nil {
		return err
	}
	if opts.StatsAddr != "" {
		ln, err := net.Listen("tcp", opts.StatsAddr)
		if err != nil {
			return fmt.Errorf("oar: stats listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			s := srv.Stats()
			ns := node.Stats()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(ServerReport{
				Delivered:      s.Delivered(),
				OptDelivered:   s.OptDelivered,
				OptUndelivered: s.OptUndelivered,
				ADelivered:     s.ADelivered,
				Epochs:         s.Epochs,
				SeqOrdersSent:  s.SeqOrdersSent,
				BatchFrames:    s.BatchFrames,
				BatchedSends:   s.BatchedMsgs,
				BatchWindowNS:  int64(s.BatchWindow),
				ReadsServed:    s.ReadsServed,
				ReadFallbacks:  s.ReadFallbacks,
				FramesSent:     ns.FramesSent,
				FramesReceived: ns.FramesReceived,
				BytesSent:      ns.BytesSent,
				BytesReceived:  ns.BytesReceived,
			})
		})
		statsSrv := &http.Server{Handler: mux}
		go func() { _ = statsSrv.Serve(ln) }()
		defer statsSrv.Close()
	}
	err = srv.Run(ctx)
	if err == context.Canceled {
		return nil
	}
	return err
}

// nextIncarnation reads, bumps and persists the boot counter of a WAL
// directory (the BOOT file). The first boot of a fresh directory is
// incarnation 0 — a normal cold start; every later boot is a restart, which
// makes the server recover (local replay, then peer catch-up) before it
// re-enters ordering. The write is atomic (tmp + rename), so a crash during
// boot cannot leave a torn counter.
func nextIncarnation(dir string) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	path := filepath.Join(dir, "BOOT")
	var inc uint64
	switch b, err := os.ReadFile(path); {
	case err == nil:
		prev, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
		if perr != nil {
			return 0, fmt.Errorf("corrupt boot counter %q: %w", path, perr)
		}
		inc = prev + 1
	case errors.Is(err, os.ErrNotExist):
		inc = 0
	default:
		return 0, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(inc, 10)+"\n"), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return inc, nil
}

// ClientOptions configures a TCP client.
type ClientOptions struct {
	// Servers lists the replicas' addresses in rank order.
	Servers []string
	// Listen is the local address for receiving replies (default
	// "127.0.0.1:0"; servers learn it from the connection handshake).
	Listen string
	// ClientIndex distinguishes concurrent client processes (default 0).
	// Two live clients must not share an index.
	ClientIndex int
	// GroupID is the ordering group the listed Servers belong to (default
	// 0). It must match the servers' GroupID.
	GroupID int
}

// TCPClient is a client talking to a TCP-deployed cluster. It is safe for
// concurrent use; every successful Invoke's response time is recorded (see
// Stats).
type TCPClient struct {
	node     *tcpnet.Node
	inner    *core.Client
	hist     *metrics.Histogram
	readHist *metrics.Histogram
}

// NewTCPClient connects a client to a TCP cluster.
func NewTCPClient(opts ClientOptions) (*TCPClient, error) {
	if len(opts.Servers) == 0 {
		return nil, fmt.Errorf("oar: no servers given")
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	group := proto.Group(len(opts.Servers))
	id := proto.ClientID(opts.ClientIndex)
	peers := make(map[proto.NodeID]string, len(opts.Servers))
	for i, addr := range opts.Servers {
		peers[group[i]] = addr
	}
	node, err := tcpnet.New(tcpnet.Config{ID: id, Listen: opts.Listen, Peers: peers})
	if err != nil {
		return nil, err
	}
	inner, err := core.NewClient(core.ClientConfig{
		ID:      id,
		Group:   group,
		GroupID: proto.GroupID(opts.GroupID), //nolint:gosec // operator-supplied small int
		Node:    node,
	})
	if err != nil {
		node.Close()
		return nil, err
	}
	inner.Start()
	return &TCPClient{
		node:     node,
		inner:    inner,
		hist:     metrics.NewHistogram(),
		readHist: metrics.NewHistogram(),
	}, nil
}

// Invoke submits a command and blocks until a consistent reply is adopted.
// Successful invocations record their end-to-end response time (submit to
// adopted reply) into the client's latency histogram.
func (c *TCPClient) Invoke(ctx context.Context, cmd []byte) (Reply, error) {
	start := time.Now()
	r, err := c.inner.Invoke(ctx, cmd)
	if err != nil {
		return Reply{}, err
	}
	c.hist.Record(time.Since(start))
	return toReply(r), nil
}

// InvokeRead submits a read-only command on the read fast path (see
// Client.InvokeRead). Successful reads record into the client's read-latency
// histogram, split out from writes.
func (c *TCPClient) InvokeRead(ctx context.Context, cmd []byte) (Reply, error) {
	start := time.Now()
	r, err := c.inner.InvokeRead(ctx, cmd)
	if err != nil {
		return Reply{}, err
	}
	c.readHist.Record(time.Since(start))
	return toReply(r), nil
}

// TCPStats is the observability surface of one TCP client: response-time
// percentiles plus the wire traffic its connection endpoints actually moved.
type TCPStats struct {
	// Latency summarizes this client's successful invocations (writes and
	// ordered-path reads); ReadLatency its successful fast-path reads.
	Latency     LatencyStats
	ReadLatency LatencyStats
	// FramesSent/FramesReceived count whole transport frames (a frame may be
	// a batch envelope carrying several protocol messages); BytesSent/
	// BytesReceived count their payload bytes.
	FramesSent     uint64
	FramesReceived uint64
	BytesSent      uint64
	BytesReceived  uint64
}

// Stats returns the client's latency and wire-traffic counters. Useful for
// cross-checking a load generator's percentiles against what this client
// observed (cmd/oar-loadgen prints both).
func (c *TCPClient) Stats() TCPStats {
	n := c.node.Stats()
	return TCPStats{
		Latency:        toLatencyStats(c.hist.Snapshot()),
		ReadLatency:    toLatencyStats(c.readHist.Snapshot()),
		FramesSent:     n.FramesSent,
		FramesReceived: n.FramesReceived,
		BytesSent:      n.BytesSent,
		BytesReceived:  n.BytesReceived,
	}
}

// Close shuts the client down.
func (c *TCPClient) Close() {
	c.inner.Stop()
	c.node.Close()
}
