// Benchmarks regenerating every experiment of DESIGN.md (one benchmark per
// table/figure; EXPERIMENTS.md records representative output):
//
//	go test -bench=. -benchmem
//
// The scenario benchmarks (E1, E3, E4) replay a fault per iteration and
// report protocol-level counters via b.ReportMetric; the load benchmarks
// (E2, E5, E6, E7, A1) run b.N requests against a live in-process cluster
// with LAN-like simulated latency, so ns/op is the per-request latency of
// the respective protocol.
package oar_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cnsvorder"
	"repro/internal/consensus"
	"repro/internal/experiments"
	"repro/internal/memnet"
	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/workload"
)

// benchNet is the campus-network latency model shared with the experiment
// suite: 1–2ms one-way. (Sub-millisecond simulated delays would be flattened
// by OS sleep granularity; hop-count shapes are what the paper's claims are
// about.)
func benchNet(seed int64) memnet.Options {
	return memnet.Options{
		MinDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond,
		Seed:     seed,
	}
}

// benchCluster boots a cluster for a load benchmark and returns an invoking
// closure plus a cleanup.
func benchCluster(b *testing.B, opts cluster.Options) (*cluster.Cluster, func(cmd string)) {
	b.Helper()
	c, err := cluster.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	cli, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	return c, func(cmd string) {
		if _, err := cli.Invoke(ctx, []byte(cmd)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Figure1b replays the Figure 1(b) fault per iteration and
// reports external inconsistencies per run: >0 for the baseline, 0 for OAR.
func BenchmarkE1Figure1b(b *testing.B) {
	for _, p := range []cluster.Protocol{cluster.FixedSeq, cluster.OAR} {
		b.Run(p.String(), func(b *testing.B) {
			var inconsistencies, rollbacks int
			for i := 0; i < b.N; i++ {
				out, err := experiments.RunFigure1b(p)
				if err != nil {
					b.Fatal(err)
				}
				inconsistencies += out.External
				rollbacks += out.Undeliveries
			}
			b.ReportMetric(float64(inconsistencies)/float64(b.N), "inconsistencies/run")
			b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/run")
		})
	}
}

// BenchmarkE2FailureFreeLatency: ns/op is the client-observed request
// latency on the failure-free path; msgs/req counts protocol traffic.
func BenchmarkE2FailureFreeLatency(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		for _, p := range []cluster.Protocol{cluster.OAR, cluster.FixedSeq, cluster.CTab} {
			b.Run(fmt.Sprintf("%s/n=%d", p, n), func(b *testing.B) {
				c, invoke := benchCluster(b, cluster.Options{
					Protocol: p, N: n, FD: cluster.FDNever, Net: benchNet(int64(n)),
				})
				c.Net(0).ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					invoke(fmt.Sprintf("m%d", i))
				}
				b.StopTimer()
				b.ReportMetric(float64(c.Net(0).Stats().MessagesSent)/float64(b.N), "msgs/req")
			})
		}
	}
}

// BenchmarkE3Failover: each iteration boots a cluster, crashes the
// sequencer and measures the time until the next reply is adopted.
func BenchmarkE3Failover(b *testing.B) {
	for _, fdTimeout := range []time.Duration{5 * time.Millisecond, 25 * time.Millisecond} {
		b.Run(fmt.Sprintf("fd=%v", fdTimeout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := cluster.New(cluster.Options{
					N: 3, Net: benchNet(int64(i)),
					FDTimeout:         fdTimeout,
					HeartbeatInterval: fdTimeout / 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				cli, err := c.NewClient()
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				if _, err := cli.Invoke(ctx, []byte("warm")); err != nil {
					b.Fatal(err)
				}
				c.Crash(0, 0)
				b.StartTimer()
				if _, err := cli.Invoke(ctx, []byte("recover")); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				c.Stop()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE4Figure4 replays the minority-partition scenario per iteration
// (OAR): rollbacks happen, clients stay consistent.
func BenchmarkE4Figure4(b *testing.B) {
	var rollbacks, inconsistencies int
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunFigure4(cluster.OAR)
		if err != nil {
			b.Fatal(err)
		}
		rollbacks += out.Undeliveries
		inconsistencies += out.External + out.TotalOrder
	}
	b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/run")
	b.ReportMetric(float64(inconsistencies)/float64(b.N), "inconsistencies/run")
}

// BenchmarkE5Throughput: b.N requests spread over 8 concurrent closed-loop
// clients; ns/op ≈ 1/throughput.
func BenchmarkE5Throughput(b *testing.B) {
	for _, p := range []cluster.Protocol{cluster.OAR, cluster.FixedSeq, cluster.CTab} {
		b.Run(p.String(), func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				Protocol: p, N: 3, FD: cluster.FDNever, Net: benchNet(5),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			const workers = 8
			clients := make([]cluster.Invoker, workers)
			for i := range clients {
				cli, err := c.NewClient()
				if err != nil {
					b.Fatal(err)
				}
				clients[i] = cli
			}
			ctx := context.Background()
			var next int64
			var mu sync.Mutex
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						mu.Lock()
						if next >= int64(b.N) {
							mu.Unlock()
							return
						}
						next++
						i := next
						mu.Unlock()
						if _, err := clients[w].Invoke(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkE6EpochGC: request latency with the Section 5.3 periodic
// PhaseII garbage collection at various epoch limits.
func BenchmarkE6EpochGC(b *testing.B) {
	for _, limit := range []int{0, 32, 256} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			c, invoke := benchCluster(b, cluster.Options{
				N: 3, FD: cluster.FDNever, Net: benchNet(11), EpochRequestLimit: limit,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				invoke(fmt.Sprintf("m%d", i))
			}
			b.StopTimer()
			b.ReportMetric(float64(c.ReplicaStats(0, 0).Epochs), "epochs")
		})
	}
}

// BenchmarkE7QuorumRule: the client-rule cost — OAR's majority-weight wait
// vs the baseline's first reply, identical network and group size.
func BenchmarkE7QuorumRule(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		for _, p := range []cluster.Protocol{cluster.OAR, cluster.FixedSeq} {
			b.Run(fmt.Sprintf("%s/n=%d", p, n), func(b *testing.B) {
				_, invoke := benchCluster(b, cluster.Options{
					Protocol: p, N: n, FD: cluster.FDNever, Net: benchNet(int64(3 * n)),
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					invoke(fmt.Sprintf("m%d", i))
				}
			})
		}
	}
}

// BenchmarkE8BatchedThroughput: the message-batching layer on the optimistic
// hot path. b.N requests from 8 clients with 16 pipelined invokes each, on
// the instant in-memory network where protocol CPU and message count are the
// bottleneck; ns/op ≈ 1/throughput. "unbatched" disables the batching layer
// (one SeqOrder and one frame per message, the pre-batching behavior),
// "batched" uses the adaptive default, "ctab" is the consensus baseline.
func BenchmarkE8BatchedThroughput(b *testing.B) {
	modes := []struct {
		name        string
		protocol    cluster.Protocol
		batchWindow time.Duration
		maxBatch    int
	}{
		{"unbatched", cluster.OAR, -1, 1},
		{"batched", cluster.OAR, 0, 0},
		{"ctab", cluster.CTab, 0, 0},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				Protocol: m.protocol, N: 3, FD: cluster.FDNever,
				Net:         memnet.Options{Seed: 17}, // instant delivery
				BatchWindow: m.batchWindow, MaxBatch: m.maxBatch,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			const clients, outstanding = 8, 16
			workers := make([]cluster.Invoker, clients)
			for i := range workers {
				cli, err := c.NewClient()
				if err != nil {
					b.Fatal(err)
				}
				workers[i] = cli
			}
			ctx := context.Background()
			c.Net(0).ResetStats()
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < clients*outstanding; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cli := workers[w%clients]
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(c.Net(0).Stats().MessagesSent)/float64(b.N), "frames/req")
		})
	}
}

// BenchmarkE9ShardScaling: throughput at 1/2/4 independent OAR groups with
// key-hash routing, on the instant in-memory network. b.N requests (each
// with its own key, so load spreads uniformly) from 8 clients with 16
// pipelined invokes each; ns/op ≈ 1/throughput, so the 4-shard/1-shard
// ns/op ratio is the scaling factor. Scaling requires cores: each shard adds
// three replica event loops that want a CPU of their own.
func BenchmarkE9ShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				N: 3, Shards: shards, FD: cluster.FDNever,
				Net: memnet.Options{Seed: 29}, // instant delivery
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			const clients, outstanding = 8, 16
			workers := make([]cluster.Invoker, clients)
			for i := range workers {
				cli, err := c.NewClient()
				if err != nil {
					b.Fatal(err)
				}
				workers[i] = cli
			}
			ctx := context.Background()
			c.ResetNetStats()
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < clients*outstanding; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cli := workers[w%clients]
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("k%d m", i))); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(float64(c.NetTotal().MessagesSent)/float64(b.N), "frames/req")
		})
	}
}

// BenchmarkE11Workload: the workload engine driving a 2-shard OAR kv
// cluster, closed loop, per key distribution. b.N measured requests at 8
// workers over 2 endpoints; ns/op ≈ per-request latency under pipelining,
// and the reported p50/p99 are the engine's own percentiles.
func BenchmarkE11Workload(b *testing.B) {
	for _, dist := range workload.Dists() {
		b.Run(dist, func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				N: 3, Shards: 2, Machine: "kv", FD: cluster.FDNever,
				Net: memnet.Options{Seed: 31}, // instant delivery
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			invokers := make([]workload.Invoke, 2)
			for i := range invokers {
				cli, err := c.NewClient()
				if err != nil {
					b.Fatal(err)
				}
				invokers[i] = func(ctx context.Context, cmd []byte) error {
					_, err := cli.Invoke(ctx, cmd)
					return err
				}
			}
			spec := workload.Spec{
				Workers: 8, Requests: b.N, Warmup: -1, Keys: 256, Dist: dist, Seed: 17,
			}
			b.ResetTimer()
			rep, err := workload.Run(context.Background(), spec, invokers, nil)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Latency.P50)/1e3, "p50-µs")
			b.ReportMetric(float64(rep.Latency.P99)/1e3, "p99-µs")
		})
	}
}

// BenchmarkA1RelayStrategy: eager vs lazy reliable-multicast relaying.
func BenchmarkA1RelayStrategy(b *testing.B) {
	for _, mode := range []rmcast.Mode{rmcast.Eager, rmcast.Lazy} {
		name := "eager"
		if mode == rmcast.Lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			c, invoke := benchCluster(b, cluster.Options{
				N: 5, FD: cluster.FDNever, Net: benchNet(13), RelayMode: mode,
			})
			c.Net(0).ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				invoke(fmt.Sprintf("m%d", i))
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Net(0).Stats().MessagesSent)/float64(b.N), "msgs/req")
		})
	}
}

// BenchmarkA2UndoThriftiness: Cnsv-order with and without the lines 15–19
// optimization, on synthetic epochs; undos/op shows the saving.
func BenchmarkA2UndoThriftiness(b *testing.B) {
	// One representative epoch where thriftiness saves everything: the
	// process delivered a prefix nobody else saw, and the merged
	// notdlv re-schedules it in the same order.
	req := func(i int) proto.Request {
		return proto.Request{ID: proto.RequestID{Client: proto.ClientID(0), Seq: uint64(i)}}
	}
	var all []proto.Request
	for i := 0; i < 64; i++ {
		all = append(all, req(i))
	}
	own := cnsvorder.Input{Dlv: all}
	other := cnsvorder.Input{NotDlv: all}
	decision := consensus.Decision{
		{From: 1, Val: other.Marshal()},
		{From: 2, Val: other.Marshal()},
	}
	for _, thrifty := range []bool{true, false} {
		name := "thrifty"
		if !thrifty {
			name = "no-thrift"
		}
		b.Run(name, func(b *testing.B) {
			var undos int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cnsvorder.ComputeOpt(own, decision, thrifty)
				if err != nil {
					b.Fatal(err)
				}
				undos += len(res.Bad)
			}
			b.ReportMetric(float64(undos)/float64(b.N), "undos/op")
		})
	}
}

// BenchmarkConsensusDecide measures one full Maj-validity consensus round
// over the in-memory network (the cost of an OAR conservative phase).
func BenchmarkConsensusDecide(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := cluster.New(cluster.Options{
					N: n, Net: benchNet(int64(i)), EpochRequestLimit: 1,
					FDTimeout: time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				cli, err := c.NewClient()
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				b.StartTimer()
				// One request with EpochRequestLimit=1 forces a full
				// PhaseII + consensus round after the optimistic delivery.
				if _, err := cli.Invoke(ctx, []byte("m")); err != nil {
					b.Fatal(err)
				}
				if !cluster.WaitUntil(10*time.Second, func() bool {
					return c.ReplicaStats(0, 0).Epochs >= 1
				}) {
					b.Fatal("phase 2 never completed")
				}
				b.StopTimer()
				c.Stop()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRandomizedSoak is a randomized end-to-end soak: random crash or
// wrong-suspicion faults under load, with the trace checker implicitly
// active in the protocols' assertions. It doubles as a stress benchmark.
func BenchmarkRandomizedSoak(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Options{
			N: 3, Net: benchNet(rng.Int63()),
			FDTimeout:         10 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		cli, err := c.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		crashAt := 5 + rng.Intn(10)
		for j := 0; j < 20; j++ {
			if j == crashAt {
				c.Crash(0, rng.Intn(3))
			}
			if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("m%d", j))); err != nil {
				b.Fatal(err)
			}
		}
		c.Stop()
	}
}
