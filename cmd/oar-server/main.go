// Command oar-server runs one OAR replica as an OS process over TCP.
//
// Start a 3-replica key-value service:
//
//	oar-server -rank 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	oar-server -rank 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	oar-server -rank 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//
// then talk to it with oar-client, or load-test it with oar-loadgen.
//
// A sharded deployment runs one replica group per ordering group: group
// g's replicas all pass -group g and list only their own group's -peers.
// Clients (oar-client -group, oar-loadgen's ';'-separated -servers) route
// by key hash; traffic that reaches the wrong group is dropped at the
// door, never misordered.
//
// A replica started with -wal-dir is durable: definitive deliveries are
// journaled (fsynced per closed epoch) and snapshots taken at epoch
// boundaries. Restarting the same command line after a crash recovers the
// replica automatically — it replays its snapshot and log tail, catches the
// remainder up from its peers, and re-enters ordering:
//
//	oar-server -rank 1 -peers ... -wal-dir /var/lib/oar/r1   # boot
//	<kill -9>
//	oar-server -rank 1 -peers ... -wal-dir /var/lib/oar/r1   # recovers
//
// Flags: -rank, -peers, -listen, -machine, -group, -suspicion-timeout
// (◊S detection; lower = faster fail-over, more false suspicions — safe
// but slower), -epoch-limit (force a conservative phase every N requests
// to bound optimistic bookkeeping; 0 = never), -wal-dir (persist the
// replica's state there and crash-recover from it; each replica needs its
// own directory), -autotune (self-tune the
// send batch window between a latency floor and a throughput ceiling),
// -pipeline (run the replica loop as decode/order/send stages on separate
// cores), -stats-addr (serve replica counters as JSON at /stats — what
// oar-loadgen -stats reads to report server-observed coalescing).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	oar "repro"
	"repro/internal/app"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		rank     = flag.Int("rank", 0, "this replica's index in -peers (0-based)")
		peers    = flag.String("peers", "", "comma-separated replica addresses, in rank order (required)")
		listen   = flag.String("listen", "", "local bind address (default: the -peers entry for -rank)")
		machine  = flag.String("machine", "kv", "replicated state machine: "+strings.Join(app.Names(), ", "))
		fdTO     = flag.Duration("suspicion-timeout", 100*time.Millisecond, "failure-detector (◊S) timeout")
		gcLimit  = flag.Int("epoch-limit", 1024, "force a conservative phase every N requests (0 = never)")
		walDir   = flag.String("wal-dir", "", "durable state directory (write-ahead log + snapshots); empty = in-memory only")
		group    = flag.Int("group", 0, "ordering group (shard) this replica serves; peers and clients must match")
		autoTune = flag.Bool("autotune", false, "self-tune the send batch window (closed-loop controller)")
		pipeline = flag.Bool("pipeline", false, "run the replica loop as decode/order/send stages on separate cores")
		stats    = flag.String("stats-addr", "", "serve replica counters as JSON at http://ADDR/stats (off when empty)")
	)
	flag.Parse()
	if *peers == "" {
		fmt.Fprintln(os.Stderr, "oar-server: -peers is required")
		flag.Usage()
		return 2
	}
	addrs := strings.Split(*peers, ",")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("oar-server: replica %d/%d, machine %q, listening on %s\n",
		*rank, len(addrs), *machine, addrs[*rank])
	err := oar.ListenAndServe(ctx, oar.ServerOptions{
		Rank:              *rank,
		Peers:             addrs,
		Listen:            *listen,
		Machine:           *machine,
		GroupID:           *group,
		SuspicionTimeout:  *fdTO,
		EpochRequestLimit: *gcLimit,
		WALDir:            *walDir,
		AutoTune:          *autoTune,
		Pipeline:          *pipeline,
		StatsAddr:         *stats,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "oar-server: %v\n", err)
		return 1
	}
	return 0
}
