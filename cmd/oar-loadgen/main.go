// Command oar-loadgen drives a real (multi-process, TCP) OAR deployment
// with a configurable workload and reports end-to-end latency percentiles
// and throughput — the measurement tool behind the methodology section of
// EXPERIMENTS.md.
//
// Start a 3-replica cluster and load it:
//
//	oar-server -rank 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	oar-server -rank 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	oar-server -rank 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	oar-loadgen -servers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	    -workers 16 -requests 5000 -dist zipfian -rw 0.8
//
// A sharded deployment lists one server group per ordering group, separated
// by ';' (group g's servers must run with -group g); commands route to the
// group owning their key exactly like the in-process cluster:
//
//	oar-loadgen -servers "host1:7000,host2:7000,host3:7000;host1:7100,host2:7100,host3:7100" ...
//
// Reads (-rw sets the read fraction) ride the zero-ordering read fast path:
// the client adopts a reply once a majority weight answered at a compatible
// prefix, no ordering messages involved (DESIGN.md "Read fast path"). The
// report splits read and write latency, prints how many read-your-writes
// checks the workload oracle performed, and — with -stats — each server's
// reads_served / read_fallbacks counters.
//
// Loop disciplines: the default is a closed loop (-workers concurrent
// clients, next request after the previous reply). -rate R switches to an
// open loop — requests arrive on a fixed R/s schedule and latency is
// measured from each request's *scheduled* arrival, so backlog waits are
// counted instead of silently omitted (see "Measurement methodology" in
// EXPERIMENTS.md). The engine's percentiles are printed next to each TCP
// client endpoint's own send-to-adopt histogram as a cross-check.
//
// Several loadgen processes may target one cluster; give each a distinct
// -index-base.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	oar "repro"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// parseGroups splits -servers into per-ordering-group address lists.
func parseGroups(servers string) ([][]string, error) {
	var groups [][]string
	for g, part := range strings.Split(servers, ";") {
		var addrs []string
		for _, a := range strings.Split(part, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("group %d has no server addresses", g)
		}
		groups = append(groups, addrs)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("no server addresses")
	}
	return groups, nil
}

// jsonReport is the machine-readable form of one loadgen run (-json),
// mirroring the latency schema of oar-bench.
type jsonReport struct {
	Mode       string  `json:"mode"`
	TargetRate float64 `json:"target_rate,omitempty"`
	Dist       string  `json:"dist"`
	Groups     int     `json:"groups"`
	Measured   uint64  `json:"count"`
	ReqPerSec  float64 `json:"req_per_sec"`
	MeanNS     int64   `json:"mean_ns"`
	P50NS      int64   `json:"p50_ns"`
	P90NS      int64   `json:"p90_ns"`
	P99NS      int64   `json:"p99_ns"`
	MaxNS      int64   `json:"max_ns"`
	// The read split: counts and percentiles of the fast-path reads (the
	// write-only fields above cover the ordered path).
	MeasuredReads uint64   `json:"reads,omitempty"`
	ReadP50NS     int64    `json:"read_p50_ns,omitempty"`
	ReadP99NS     int64    `json:"read_p99_ns,omitempty"`
	RYWChecked    uint64   `json:"ryw_checked,omitempty"`
	Routed        []uint64 `json:"routed"`
}

func run() int {
	var (
		servers   = flag.String("servers", "", "replica addresses, rank order; ';' separates ordering groups (required)")
		machine   = flag.String("machine", "kv", "state machine the cluster runs (selects the routing key)")
		clients   = flag.Int("clients", 1, "client endpoints per ordering group")
		indexBase = flag.Int("index-base", 0, "first client index (distinct per concurrent loadgen process)")
		workers   = flag.Int("workers", 16, "concurrent workers (closed loop) / in-flight cap (open loop)")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		requests  = flag.Int("requests", 5000, "measured requests")
		warmup    = flag.Int("warmup", 0, "unmeasured leading requests (0 = requests/10, -1 = none)")
		dist      = flag.String("dist", workload.Uniform, "key distribution: uniform or zipfian")
		theta     = flag.Float64("theta", 0.99, "zipfian skew in (0,1)")
		readRatio = flag.Float64("rw", 0.5, "read fraction in [0,1] (0 = all writes); reads use the zero-ordering fast path and are reported separately")
		valueSize = flag.Int("value-size", 16, "write payload bytes")
		keys      = flag.Int("keys", 1024, "keyspace size")
		seed      = flag.Int64("seed", 1, "workload seed (runs are reproducible per seed)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "overall run deadline")
		jsonPath  = flag.String("json", "", "also write the report as JSON to this path")
		statsURLs = flag.String("stats", "", "comma-separated server stats addresses (oar-server -stats-addr) to report server-observed coalescing from")
	)
	flag.Parse()
	if *servers == "" {
		fmt.Fprintln(os.Stderr, "oar-loadgen: -servers is required")
		flag.Usage()
		return 2
	}
	groups, err := parseGroups(*servers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-loadgen: %v\n", err)
		return 2
	}
	router, err := shard.NewRouter(len(groups), shard.MachineKey(*machine))
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-loadgen: %v\n", err)
		return 2
	}

	// One TCP client per (endpoint, group); endpoint i routes each command
	// to its group-g client, exactly like the in-process sharded client.
	type endpoint struct {
		perGroup []*oar.TCPClient
	}
	eps := make([]endpoint, *clients)
	defer func() {
		for _, ep := range eps {
			for _, cli := range ep.perGroup {
				if cli != nil {
					cli.Close()
				}
			}
		}
	}()
	for i := range eps {
		eps[i].perGroup = make([]*oar.TCPClient, len(groups))
		for g, addrs := range groups {
			cli, err := oar.NewTCPClient(oar.ClientOptions{
				Servers:     addrs,
				ClientIndex: *indexBase + i,
				GroupID:     g,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "oar-loadgen: connecting endpoint %d to group %d: %v\n", i, g, err)
				return 1
			}
			eps[i].perGroup[g] = cli
		}
	}

	// Reads ride the zero-ordering fast path (InvokeRead); writes the ordered
	// path. The RunRW engine times the two separately and checks every read
	// against the worker's own writes (read-your-writes oracle).
	routedCounts := make([]atomic.Uint64, len(groups))
	invokers := make([]workload.RWInvoke, *clients)
	for i := range invokers {
		ep := eps[i]
		invokers[i] = func(ctx context.Context, cmd []byte, read bool) ([]byte, error) {
			g := router.Route(cmd)
			routedCounts[g].Add(1)
			if read {
				r, err := ep.perGroup[g].InvokeRead(ctx, cmd)
				return r.Result, err
			}
			r, err := ep.perGroup[g].Invoke(ctx, cmd)
			return r.Result, err
		}
	}

	spec := workload.Spec{
		Workers:   *workers,
		Rate:      *rate,
		Requests:  *requests,
		Warmup:    *warmup,
		ReadRatio: *readRatio,
		Keys:      *keys,
		Dist:      *dist,
		Theta:     *theta,
		ValueSize: *valueSize,
		Seed:      *seed,
	}
	if *readRatio == 0 {
		spec.ReadRatio = -1 // all writes
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Printf("oar-loadgen: %s loop, %d workers, %d requests (+%d warmup), dist=%s rw=%.2f, %d group(s) × %d endpoint(s)\n",
		spec.Mode(), spec.Workers, *requests, effectiveWarmup(*warmup, *requests), *dist, spec.ReadRatio, len(groups), *clients)
	rep, err := workload.RunRW(ctx, spec, invokers, nil, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-loadgen: %v\n", err)
		return 1
	}

	// The read/write split: Latency covers the ordered writes, ReadLatency
	// the fast-path reads (see workload.Report).
	s := rep.Latency
	r := rep.ReadLatency
	target := "-"
	if *rate > 0 {
		target = fmt.Sprintf("%.0f", *rate)
	}
	writes := rep.Measured - rep.MeasuredReads
	fmt.Println()
	fmt.Printf("%s loop (target %s/s): %.0f req/s over %d measured (%d writes, %d reads)\n",
		rep.Spec.Mode(), target, rep.Throughput, rep.Measured, writes, rep.MeasuredReads)
	latRows := [][]string{{
		"write", fmt.Sprint(writes),
		us(s.Mean), us(s.P50), us(s.P90), us(s.P99), us(s.Max),
	}}
	if rep.MeasuredReads > 0 {
		latRows = append(latRows, []string{
			"read", fmt.Sprint(rep.MeasuredReads),
			us(r.Mean), us(r.P50), us(r.P90), us(r.P99), us(r.Max),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"path", "n", "mean", "p50", "p90", "p99", "max"},
		latRows,
	))
	if rep.MeasuredReads > 0 && s.P50 > 0 {
		fmt.Printf("read-your-writes checks: %d, read/write p50: %.2f\n",
			rep.RYWChecked, float64(r.P50)/float64(s.P50))
	}

	fmt.Println()
	routed := make([]uint64, len(groups))
	for g := range routedCounts {
		routed[g] = routedCounts[g].Load()
	}
	var rows [][]string
	var total uint64
	for _, n := range routed {
		total += n
	}
	for g, n := range routed {
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
		}
		rows = append(rows, []string{fmt.Sprintf("g%d", g), fmt.Sprint(n), share})
	}
	fmt.Print(metrics.Table([]string{"group", "routed", "share"}, rows))

	// Cross-check: each TCP client endpoint's own histogram (recorded at
	// Invoke, warmup included) should agree with the engine's percentiles
	// up to warmup skew and bucket resolution.
	fmt.Println()
	rows = rows[:0]
	for i, ep := range eps {
		for g, cli := range ep.perGroup {
			cs := cli.Stats()
			if cs.Latency.Count == 0 && cs.ReadLatency.Count == 0 {
				continue
			}
			readP50 := "-"
			if cs.ReadLatency.Count > 0 {
				readP50 = us(cs.ReadLatency.P50)
			}
			rows = append(rows, []string{
				fmt.Sprintf("ep%d/g%d", i, g),
				fmt.Sprint(cs.Latency.Count),
				us(cs.Latency.P50), us(cs.Latency.P99), us(cs.Latency.Max),
				fmt.Sprint(cs.ReadLatency.Count), readP50,
				fmt.Sprint(cs.FramesSent), fmt.Sprint(cs.FramesReceived),
				fmt.Sprint(cs.BytesSent), fmt.Sprint(cs.BytesReceived),
			})
		}
	}
	fmt.Print(metrics.Table(
		[]string{"client", "wrN(+warmup)", "p50", "p99", "max", "rdN(+warmup)", "rd p50", "frTX", "frRX", "byTX", "byRX"}, rows))

	// Server-side view (needs oar-server -stats-addr): how well each replica's
	// send batcher coalesced — outbound frames per delivered request, protocol
	// messages per frame, and the effective batch window the tuner settled on.
	if *statsURLs != "" {
		rows = rows[:0]
		for _, addr := range strings.Split(*statsURLs, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			rep, err := fetchServerStats(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "oar-loadgen: stats %s: %v\n", addr, err)
				rows = append(rows, []string{addr, "-", "-", "-", "-", "-", "-", "-"})
				continue
			}
			framesPerReq, msgsPerFrame := "-", "-"
			if rep.Delivered > 0 {
				framesPerReq = fmt.Sprintf("%.2f", float64(rep.BatchFrames)/float64(rep.Delivered))
			}
			if rep.BatchFrames > 0 {
				msgsPerFrame = fmt.Sprintf("%.2f", float64(rep.BatchedSends)/float64(rep.BatchFrames))
			}
			rows = append(rows, []string{
				addr,
				fmt.Sprint(rep.Delivered),
				fmt.Sprint(rep.ReadsServed),
				fmt.Sprint(rep.ReadFallbacks),
				fmt.Sprint(rep.BatchFrames),
				framesPerReq,
				msgsPerFrame,
				time.Duration(rep.BatchWindowNS).String(),
			})
		}
		fmt.Println()
		fmt.Print(metrics.Table(
			[]string{"server", "delivered", "reads", "rd-fallback", "frames", "frames/req", "msgs/frame", "window"}, rows))
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(jsonReport{
			Mode:       rep.Spec.Mode(),
			TargetRate: *rate,
			Dist:       *dist,
			Groups:     len(groups),
			Measured:   rep.Measured,
			ReqPerSec:  rep.Throughput,
			MeanNS:     int64(s.Mean),
			P50NS:      int64(s.P50),
			P90NS:      int64(s.P90),
			P99NS:      int64(s.P99),
			MaxNS:      int64(s.Max),

			MeasuredReads: rep.MeasuredReads,
			ReadP50NS:     int64(r.P50),
			ReadP99NS:     int64(r.P99),
			RYWChecked:    rep.RYWChecked,
			Routed:        routed,
		}, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-loadgen: writing %s: %v\n", *jsonPath, err)
			return 1
		}
	}
	return 0
}

// fetchServerStats reads one replica's /stats JSON document.
func fetchServerStats(addr string) (oar.ServerReport, error) {
	var rep oar.ServerReport
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("status %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	return rep, err
}

func effectiveWarmup(warmup, requests int) int {
	switch {
	case warmup == 0:
		return requests / 10
	case warmup < 0:
		return 0
	default:
		return warmup
	}
}

func us(d time.Duration) string { return d.Round(time.Microsecond).String() }
