// Command oar-vet runs the repository's custom static-analysis suite
// (internal/analysis): framelease, retained, atomicfield and grouptag — the
// machine-checked versions of the ownership, clone-on-retain, atomic-access
// and group-tagging invariants documented in the source.
//
// Two modes:
//
//	oar-vet ./...                         standalone, used by `make check`/CI
//	go vet -vettool=$(which oar-vet) ./...  as a go vet backend
//
// Standalone mode loads and typechecks packages itself (via `go list
// -export`), analyzes every package the patterns match, and exits non-zero
// if any analyzer reports a finding. Vettool mode speaks go vet's unit-
// checker protocol: the go command hands it one JSON config file per
// package (GoFiles, ImportMap, PackageFile export data) and collects the
// findings.
package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// go vet protocol: version and flag discovery.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			// The version string keys go vet's result cache.
			fmt.Println("oar-vet version v1")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}

	// go vet protocol: a single *.cfg argument describes one package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}

	// Standalone: analyze the matched packages of the current module.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(dir, analysis.All(), patterns...)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "oar-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// vetConfig is the package description go vet writes for -vettool backends
// (the relevant subset of cmd/go's vet config).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("oar-vet: parsing %s: %w", cfgFile, err))
	}
	// The driver expects a facts file even though these analyzers export no
	// facts; write it first so a finding-induced non-zero exit still leaves
	// the cache entry behind.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("oar-vet: no export data for %q", path)
		}
		return os.Open(file)
	})
	_ = imp

	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files[i] = f
	}
	pkg, err := checkWithImporter(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// checkWithImporter typechecks one package's files with the given importer —
// the vettool-mode twin of Loader.Check.
func checkWithImporter(fset *token.FileSet, imp types.Importer, path string, files []string) (*analysis.Package, error) {
	l := analysis.NewRawChecker(fset, imp)
	return l.Check(path, files)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
