// Command oar-nemesis drives the deterministic fault-injection harness of
// internal/nemesis: seed-derived scenario schedules (partitions, crashes,
// suspicion scripts, gray links, drop/dup/reorder rules) executed against a
// live in-process cluster under a mixed workload, with the full proposition
// suite checked after every run.
//
// Subcommands:
//
//	oar-nemesis generate -seed 7            # print the schedule seed 7 derives
//	oar-nemesis run -schedule s.txt         # replay one schedule, verify, exit 1 on violations
//	oar-nemesis search -budget 500          # run seeded schedules until one fails
//	oar-nemesis shrink -schedule fail.txt   # ddmin a failing schedule to a minimal artifact
//
// search writes the failing schedule — raw and shrunk — to -out (default
// "nemesis-fail.txt" / "nemesis-fail.min.txt"): committable, diffable text
// artifacts that `oar-nemesis run -schedule` replays exactly. A clean search
// exits 0, a finding exits 1, a harness error exits 2.
//
// -inject stale-read-floor re-introduces the PR 8 read-floor bug behind its
// test hook (core.StaleReadFloorBug) — the supported way to validate that
// the search/shrink pipeline still detects a real, historical bug class:
//
//	oar-nemesis search -inject stale-read-floor
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nemesis"
)

func main() { os.Exit(run()) }

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: oar-nemesis <generate|run|search|shrink> [flags]")
	fmt.Fprintln(os.Stderr, "run 'oar-nemesis <subcommand> -h' for the subcommand's flags")
	return 2
}

// runFlags installs the executor-config flags shared by every subcommand
// that runs schedules. The returned finish func resolves the string-typed
// flags and must be called after fs.Parse.
func runFlags(fs *flag.FlagSet) (*nemesis.Config, func() error) {
	cfg := &nemesis.Config{}
	var protocol string
	fs.StringVar(&protocol, "protocol", "oar", "ordering backend: oar, fixedseq or ctab")
	fs.IntVar(&cfg.N, "n", 3, "replicas per group")
	fs.IntVar(&cfg.Shards, "shards", 1, "number of groups")
	fs.IntVar(&cfg.Requests, "requests", 96, "total operations per run")
	fs.IntVar(&cfg.Workers, "workers", 4, "closed-loop workload concurrency")
	fs.IntVar(&cfg.Clients, "clients", 1, "client endpoints the workers share")
	fs.Float64Var(&cfg.ReadRatio, "rw", 0.65, "read fraction (0 = the 0.5 default, negative = all writes)")
	fs.BoolVar(&cfg.WAL, "wal", false, "give every replica a write-ahead log (fresh temp dir per run); restarted replicas then recover from disk before peer catch-up")
	fs.Int64Var(&cfg.Seed, "workload-seed", 5, "workload stream seed")
	fs.DurationVar(&cfg.OpTimeout, "op-timeout", 30*time.Second, "per-operation liveness bound")
	fs.DurationVar(&cfg.SettleTimeout, "settle-timeout", 10*time.Second, "quiescence bound per verification window")
	inject := fs.String("inject", "", "re-enable a historical bug behind its test hook (stale-read-floor)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oar-nemesis %s [flags]\n", fs.Name())
		fs.PrintDefaults()
	}
	return cfg, func() error {
		cfg.Protocol = cluster.Protocol(protocol)
		switch *inject {
		case "":
		case "stale-read-floor":
			core.StaleReadFloorBug.Store(true)
		default:
			return fmt.Errorf("unknown -inject %q (supported: stale-read-floor)", *inject)
		}
		return nil
	}
}

func run() int {
	if len(os.Args) < 2 {
		return usage()
	}
	sub, args := os.Args[1], os.Args[2:]
	switch sub {
	case "generate":
		return cmdGenerate(args)
	case "run":
		return cmdRun(args)
	case "search":
		return cmdSearch(args)
	case "shrink":
		return cmdShrink(args)
	default:
		return usage()
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "oar-nemesis:", err)
	return 2
}

func cmdGenerate(args []string) int {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	spec := nemesis.GenSpec{}
	fs.IntVar(&spec.N, "n", 3, "replicas per group")
	fs.IntVar(&spec.Shards, "shards", 1, "number of groups")
	fs.IntVar(&spec.Motifs, "motifs", 3, "fault motifs to compose")
	fs.Int64Var(&spec.Seed, "seed", 1, "schedule seed")
	out := fs.String("out", "", "write the schedule here instead of stdout")
	_ = fs.Parse(args)
	text := nemesis.Generate(spec).Encode()
	if *out == "" {
		fmt.Print(text)
		return 0
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		return fail(err)
	}
	return 0
}

func loadSchedule(path string) (*nemesis.Schedule, error) {
	if path == "" {
		return nil, fmt.Errorf("-schedule is required")
	}
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return nemesis.Parse(string(text))
}

func report(res *nemesis.Result) {
	fmt.Printf("ops=%d reads=%d elapsed=%v\n", res.Ops, res.Reads, res.Elapsed.Round(time.Millisecond))
	for s, c := range res.Counts {
		fmt.Printf("shard %d: issued=%d adopted=%d readAdopted=%d opt=%d cons=%d undone=%d\n",
			s, c.Issued, c.Adoptions, c.ReadAdoptions, c.Opt, c.Cons, c.Undeliveries)
	}
	for _, v := range res.Violations {
		fmt.Println("VIOLATION:", v)
	}
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cfg, finish := runFlags(fs)
	schedule := fs.String("schedule", "", "schedule file to replay")
	_ = fs.Parse(args)
	if err := finish(); err != nil {
		return fail(err)
	}
	sched, err := loadSchedule(*schedule)
	if err != nil {
		return fail(err)
	}
	res, err := nemesis.Run(*cfg, sched)
	if err != nil {
		return fail(err)
	}
	report(res)
	if res.Failed() {
		return 1
	}
	fmt.Println("clean")
	return 0
}

func cmdSearch(args []string) int {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	cfg, finish := runFlags(fs)
	budget := fs.Int("budget", 200, "how many seeded schedules to try")
	baseSeed := fs.Int64("seed", 1, "first schedule seed (seed i is seed+i)")
	motifs := fs.Int("motifs", 3, "fault motifs per schedule")
	out := fs.String("out", "nemesis-fail.txt", "failing schedule artifact path")
	noShrink := fs.Bool("no-shrink", false, "skip shrinking the finding")
	repeats := fs.Int("repeats", 3, "runs per shrink candidate (any failure counts)")
	quiet := fs.Bool("q", false, "suppress per-run progress dots")
	_ = fs.Parse(args)
	if err := finish(); err != nil {
		return fail(err)
	}
	found, ran, err := nemesis.Search(nemesis.SearchConfig{
		Run:      *cfg,
		Gen:      nemesis.GenSpec{Motifs: *motifs},
		Budget:   *budget,
		BaseSeed: *baseSeed,
		Progress: func(seed int64, res *nemesis.Result) {
			if !*quiet {
				fmt.Fprint(os.Stderr, ".")
			}
		},
	})
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return fail(err)
	}
	if found == nil {
		fmt.Printf("clean: %d schedules, no violations\n", ran)
		return 0
	}
	fmt.Printf("seed %d failed after %d runs:\n", found.Seed, ran)
	for _, v := range found.Result.Violations {
		fmt.Println("VIOLATION:", v)
	}
	if err := os.WriteFile(*out, []byte(found.Schedule.Encode()), 0o644); err != nil {
		return fail(err)
	}
	fmt.Println("schedule written to", *out)
	if !*noShrink {
		shrunk := nemesis.Shrink(found.Schedule, nemesis.FailOracle(*cfg, *repeats))
		min := minPath(*out)
		if err := os.WriteFile(min, []byte(shrunk.Encode()), 0o644); err != nil {
			return fail(err)
		}
		fmt.Printf("shrunk %d -> %d steps, written to %s\n",
			len(found.Schedule.Steps), len(shrunk.Steps), min)
	}
	return 1
}

// minPath derives the shrunk-artifact path: x.txt -> x.min.txt.
func minPath(p string) string {
	if len(p) > 4 && p[len(p)-4:] == ".txt" {
		return p[:len(p)-4] + ".min.txt"
	}
	return p + ".min"
}

func cmdShrink(args []string) int {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	cfg, finish := runFlags(fs)
	schedule := fs.String("schedule", "", "failing schedule file to minimize")
	out := fs.String("out", "", "shrunk artifact path (default <schedule>.min.txt)")
	repeats := fs.Int("repeats", 3, "runs per candidate (any failure counts)")
	_ = fs.Parse(args)
	if err := finish(); err != nil {
		return fail(err)
	}
	sched, err := loadSchedule(*schedule)
	if err != nil {
		return fail(err)
	}
	oracle := nemesis.FailOracle(*cfg, *repeats)
	if !oracle(sched) {
		return fail(fmt.Errorf("schedule does not fail under this config; nothing to shrink"))
	}
	shrunk := nemesis.Shrink(sched, oracle)
	dst := *out
	if dst == "" {
		dst = minPath(*schedule)
	}
	if err := os.WriteFile(dst, []byte(shrunk.Encode()), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("shrunk %d -> %d steps, written to %s\n", len(sched.Steps), len(shrunk.Steps), dst)
	return 0
}
