// Command oar-sim replays the scenario figures of the paper as live event
// timelines: every Opt-deliver, Opt-undeliver, A-deliver and reply adoption
// is printed as it happens, labelled with the process and epoch — an
// executable rendition of Figures 1–4.
//
//	oar-sim -scenario fig2                     # failure-free run (optimistic phase only)
//	oar-sim -scenario fig3                     # sequencer crash, no undelivery
//	oar-sim -scenario fig4                     # minority partition: Opt-undeliver + repair
//	oar-sim -scenario fig1b                    # the baseline's external inconsistency
//	oar-sim -scenario fig1b -protocol oar      # the same fault against another backend
//
// The fault scenarios (fig1b, fig4) replay their script against any
// registered ordering backend via -protocol; the sequencer-shaped scripts
// are meaningful for oar and fixedseq.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/cnsvorder"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memnet"
	"repro/internal/proto"
)

// timeline prints protocol events with relative timestamps.
type timeline struct {
	mu    sync.Mutex
	start time.Time
}

var _ core.Tracer = (*timeline)(nil)

func newTimeline() *timeline { return &timeline{start: time.Now()} }

func (tl *timeline) log(format string, args ...any) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	fmt.Printf("%8.2fms  %s\n", float64(time.Since(tl.start).Microseconds())/1000, fmt.Sprintf(format, args...))
}

func (tl *timeline) Issue(c proto.NodeID, r proto.RequestID, cmd []byte) {
	tl.log("%-4v OAR-multicast %v %q", c, r, cmd)
}

func (tl *timeline) OptDeliver(s proto.NodeID, e uint64, r proto.RequestID, p uint64, res []byte) {
	tl.log("%-4v Opt-deliver   %v @ pos %d -> %q (epoch %d)", s, r, p, res, e)
}

func (tl *timeline) OptUndeliver(s proto.NodeID, e uint64, r proto.RequestID) {
	tl.log("%-4v OPT-UNDELIVER %v (epoch %d)  << rollback", s, r, e)
}

func (tl *timeline) ADeliver(s proto.NodeID, e uint64, r proto.RequestID, p uint64, res []byte) {
	tl.log("%-4v A-deliver     %v @ pos %d -> %q (epoch %d)", s, r, p, res, e)
}

func (tl *timeline) EpochClose(s proto.NodeID, e uint64, in cnsvorder.Input, res cnsvorder.Result) {
	tl.log("%-4v epoch %d closed: |Good|=%d |Bad|=%d |New|=%d", s, e, len(res.Good), len(res.Bad), len(res.New))
}

func (tl *timeline) Adopt(c proto.NodeID, r proto.RequestID, reply proto.Reply) {
	tl.log("%-4v ADOPTS reply for %v: %q @ pos %d, weight %v", c, r, reply.Result, reply.Pos, reply.Weight)
}

func (tl *timeline) ReadAdopt(c proto.NodeID, r proto.RequestID, reply proto.Reply) {
	tl.log("%-4v ADOPTS read  for %v: %q @ pos %d (epoch %d), weight %v", c, r, reply.Result, reply.Pos, reply.Epoch, reply.Weight)
}

func main() {
	os.Exit(run())
}

func run() int {
	scenario := flag.String("scenario", "fig2", "fig2 | fig3 | fig4 | fig1b")
	protoName := flag.String("protocol", "", "ordering backend for the fault scenarios (default: fig4 oar, fig1b fixedseq)")
	flag.Parse()

	pick := func(fallback cluster.Protocol) (cluster.Protocol, error) {
		if *protoName == "" {
			return fallback, nil
		}
		if _, err := backend.Lookup(*protoName); err != nil {
			return "", err
		}
		return cluster.Protocol(*protoName), nil
	}

	switch *scenario {
	case "fig2":
		return fig2()
	case "fig3":
		return fig3()
	case "fig4":
		p, err := pick(cluster.OAR)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-sim: %v\n", err)
			return 2
		}
		return scenarioOutcome(
			fmt.Sprintf("Figure 4: minority partition; the minority must roll back (%v, n=5)", p),
			func(tl *timeline) (experiments.Outcome, error) {
				return experiments.RunFigure4(p, tl)
			})
	case "fig1b":
		p, err := pick(cluster.FixedSeq)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-sim: %v\n", err)
			return 2
		}
		return scenarioOutcome(
			fmt.Sprintf("Figure 1(b): crash between reply and ordering (%v)", p),
			func(tl *timeline) (experiments.Outcome, error) {
				return experiments.RunFigure1b(p, tl)
			})
	default:
		fmt.Fprintf(os.Stderr, "oar-sim: unknown scenario %q\n", *scenario)
		return 2
	}
}

func scenarioOutcome(title string, fn func(*timeline) (experiments.Outcome, error)) int {
	fmt.Println(title)
	fmt.Println()
	tl := newTimeline()
	out, err := fn(tl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-sim: %v\n", err)
		return 1
	}
	fmt.Printf("\noutcome: %d external inconsistencies, %d order divergences, %d rollbacks\n",
		out.External, out.TotalOrder, out.Undeliveries)
	return 0
}

func fig2() int {
	fmt.Println("Figure 2: failure-free run — only the optimistic phase executes (OAR, n=3)")
	fmt.Println()
	tl := newTimeline()
	ck := check.New(3)
	c, err := cluster.New(cluster.Options{
		N: 3, FD: cluster.FDNever, Tracer: core.MultiTracer(ck, tl),
		Net: netDelay(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	cluster.WaitUntil(5*time.Second, func() bool { return c.TotalStats().OptDelivered == 15 })
	return verdict(ck)
}

func fig3() int {
	fmt.Println("Figure 3: the sequencer crashes; survivors run the conservative phase;")
	fmt.Println("the majority guarantee protects every delivered message (OAR, n=3)")
	fmt.Println()
	tl := newTimeline()
	ck := check.New(3)
	c, err := cluster.New(cluster.Options{
		N: 3, Tracer: core.MultiTracer(ck, tl),
		Net:               netDelay(),
		FDTimeout:         25 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 2; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	tl.log(">>>> crashing the sequencer p0")
	ck.MarkCrashed(0)
	c.Crash(0, 0)
	for i := 3; i <= 4; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return verdict(ck)
}

func verdict(ck *check.Checker) int {
	vs := ck.Verify()
	fmt.Printf("\ntrace checker: %d violations", len(vs))
	for _, v := range vs {
		fmt.Printf("\n  %v", v)
	}
	fmt.Println()
	if len(vs) > 0 {
		return 1
	}
	return 0
}

func netDelay() memnet.Options {
	return memnet.Options{
		MinDelay: 500 * time.Microsecond,
		MaxDelay: 1500 * time.Microsecond,
		Seed:     3,
	}
}
