// Command oar-bench runs the reproduction experiment suite of DESIGN.md
// (E1–E10 and the ablations A1–A2) and prints one table per experiment —
// the data recorded in EXPERIMENTS.md.
//
//	oar-bench                      # full suite (a few minutes)
//	oar-bench -quick               # scaled-down sweep (tens of seconds)
//	oar-bench -run E2,E5           # a subset
//	oar-bench -protocol oar,ctab   # restrict the backend sweeps (E2, E5, E10)
//	oar-bench -json BENCH.json     # machine-readable results for trend tracking
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// jsonResult is the machine-readable form of one experiment's outcome,
// written by -json so the perf trajectory (req/s, frames/req, violations)
// can be tracked across commits as BENCH_*.json artifacts.
type jsonResult struct {
	ID        string     `json:"id"`
	Title     string     `json:"title,omitempty"`
	Header    []string   `json:"header,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
	// Error marks an experiment that ran but failed, so a trend-tracking
	// consumer can tell "failed" from "not selected".
	Error string `json:"error,omitempty"`
}

// parseProtocols turns the -protocol flag into a backend selection,
// validating every name against the registry so typos fail fast.
func parseProtocols(list string) ([]cluster.Protocol, error) {
	if list == "" {
		return nil, nil
	}
	var out []cluster.Protocol
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if _, err := backend.Lookup(name); err != nil {
			return nil, err
		}
		out = append(out, cluster.Protocol(name))
	}
	return out, nil
}

func run() int {
	var (
		quick       = flag.Bool("quick", false, "scaled-down request counts and sweeps")
		only        = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		batchWindow = flag.Duration("batch-window", 0, "sequencer batch window for E8's batched rows (0 = adaptive)")
		maxBatch    = flag.Int("max-batch", 0, "max requests per ordering message for E8's batched rows (0 = default)")
		shards      = flag.Int("shards", 0, "largest shard count E9 sweeps to, in powers of two (0 = the 1/2/4 default)")
		protoList   = flag.String("protocol", "", "comma-separated ordering backends for the E2/E5/E10 sweeps (default: "+strings.Join(backend.Names(), ",")+")")
		jsonPath    = flag.String("json", "", "write machine-readable per-experiment results to this path")
	)
	flag.Parse()
	selected, err := parseProtocols(*protoList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-bench: %v\n", err)
		return 2
	}
	cfg := experiments.Config{
		Quick:       *quick,
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		Shards:      *shards,
		Protocols:   selected,
	}

	type exp struct {
		id string
		fn func(experiments.Config) (experiments.Result, error)
	}
	suite := []exp{
		{"E1", experiments.E1ExternalInconsistency},
		{"E2", experiments.E2FailureFreeLatency},
		{"E3", experiments.E3Failover},
		{"E4", experiments.E4OptUndeliver},
		{"E5", experiments.E5Throughput},
		{"E6", experiments.E6EpochGC},
		{"E7", experiments.E7QuorumRule},
		{"E8", experiments.E8Batching},
		{"E9", experiments.E9ShardScaling},
		{"E10", experiments.E10BackendMatrix},
		{"A1", experiments.A1RelayStrategy},
		{"A2", experiments.A2UndoThriftiness},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	failed := false
	collected := []jsonResult{} // non-nil: -json writes [] rather than null when nothing ran
	for _, e := range suite {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t0 := time.Now()
		res, err := e.fn(cfg)
		took := time.Since(t0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			collected = append(collected, jsonResult{ID: e.id, Error: err.Error(), ElapsedMS: took.Milliseconds()})
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s took %v)\n\n", e.id, took.Round(time.Millisecond))
		collected = append(collected, jsonResult{
			ID:        res.ID,
			Title:     res.Title,
			Header:    res.Header,
			Rows:      res.Rows,
			Notes:     res.Notes,
			ElapsedMS: took.Milliseconds(),
		})
	}
	fmt.Printf("suite finished in %v\n", time.Since(start).Round(time.Millisecond))
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(collected, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-bench: writing %s: %v\n", *jsonPath, err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
