// Command oar-bench runs the reproduction experiment suite of DESIGN.md
// (E1–E15 and the ablations A1–A2) and prints one table per experiment —
// the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	oar-bench                      # full suite (a few minutes)
//	oar-bench -quick               # scaled-down sweep (tens of seconds)
//	oar-bench -run E2,E5           # a subset
//	oar-bench -protocol oar,ctab   # restrict the backend sweeps (E2, E5, E10, E11)
//	oar-bench -json BENCH.json     # machine-readable results for trend tracking
//	oar-bench -run E8 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	                               # pprof profiles of the selected experiments,
//	                               # for flamegraph-backed perf comparisons
//
// The workload matrix (E11) is shaped with:
//
//	oar-bench -run E11 -dist zipfian           # one key distribution
//	oar-bench -run E11 -workload open          # one loop discipline
//	oar-bench -run E11 -rw 0.9                 # 90% reads
//
// -json output includes, per experiment, a `latency` array of structured
// samples (labels, count, p50_ns/p90_ns/p99_ns/max_ns, req_per_sec) — the
// stable schema CI trend tracking consumes. -require-latency makes the run
// fail when the selected experiments produced no (or zero-valued) latency
// samples, so the schema cannot silently rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// jsonResult is the machine-readable form of one experiment's outcome,
// written by -json so the perf trajectory (req/s, frames/req, violations —
// and, since E11, latency percentiles) can be tracked across commits as
// BENCH_*.json artifacts.
type jsonResult struct {
	ID     string     `json:"id"`
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
	// Latency is the experiment's structured latency samples (see
	// experiments.LatencySample for the stable field schema).
	Latency   []experiments.LatencySample `json:"latency,omitempty"`
	ElapsedMS int64                       `json:"elapsed_ms"`
	// Error marks an experiment that ran but failed, so a trend-tracking
	// consumer can tell "failed" from "not selected".
	Error string `json:"error,omitempty"`
}

// parseProtocols turns the -protocol flag into a backend selection,
// validating every name against the registry so typos fail fast.
func parseProtocols(list string) ([]cluster.Protocol, error) {
	if list == "" {
		return nil, nil
	}
	var out []cluster.Protocol
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if _, err := backend.Lookup(name); err != nil {
			return nil, err
		}
		out = append(out, cluster.Protocol(name))
	}
	return out, nil
}

// checkLatency enforces the -require-latency gate: at least one selected
// experiment must have produced latency samples, and every sample must have
// a filled schema (count and positive p50/p99). Returns a description of
// the first problem, or "".
func checkLatency(results []jsonResult) string {
	sampled := 0
	for _, r := range results {
		for i, s := range r.Latency {
			if s.Count == 0 || s.P50NS <= 0 || s.P99NS <= 0 {
				return fmt.Sprintf("%s latency sample %d has empty schema fields: %+v", r.ID, i, s)
			}
			sampled++
		}
	}
	if sampled == 0 {
		return "no experiment produced latency samples (expected from E2 and E11)"
	}
	return ""
}

func run() int {
	var (
		quick       = flag.Bool("quick", false, "scaled-down request counts and sweeps")
		only        = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		batchWindow = flag.Duration("batch-window", 0, "sequencer batch window for E8's batched rows (0 = adaptive)")
		maxBatch    = flag.Int("max-batch", 0, "max requests per ordering message for E8's batched rows (0 = default)")
		shards      = flag.Int("shards", 0, "largest shard count E9 sweeps to, in powers of two (0 = the 1/2/4 default)")
		protoList   = flag.String("protocol", "", "comma-separated ordering backends for the E2/E5/E10/E11 sweeps (default: "+strings.Join(backend.Names(), ",")+")")
		workloadSel = flag.String("workload", "", "restrict E11's loop disciplines: closed or open (default: both)")
		distSel     = flag.String("dist", "", "restrict E11's key distributions: uniform or zipfian (default: both)")
		readRatio   = flag.Float64("rw", 0.5, "read fraction in [0,1]: E11's mix, and E13's ratio sweep override when set off the 0.5 default (0 = all writes)")
		jsonPath    = flag.String("json", "", "write machine-readable per-experiment results to this path")
		requireLat  = flag.Bool("require-latency", false, "fail unless the selected experiments emitted complete latency samples (the CI schema gate)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this path")
		memProfile  = flag.String("memprofile", "", "write a pprof allocation profile to this path at exit")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-bench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "oar-bench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "oar-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "oar-bench: -memprofile: %v\n", err)
			}
		}()
	}
	selected, err := parseProtocols(*protoList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-bench: %v\n", err)
		return 2
	}
	rw := *readRatio
	if rw == 0 {
		rw = -1 // the experiments' Config uses 0 for "default mix", negative for "all writes"
	}
	cfg := experiments.Config{
		Quick:       *quick,
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		Shards:      *shards,
		Protocols:   selected,
		Workload:    *workloadSel,
		Dist:        *distSel,
		ReadRatio:   rw,
	}

	type exp struct {
		id string
		fn func(experiments.Config) (experiments.Result, error)
	}
	suite := []exp{
		{"E1", experiments.E1ExternalInconsistency},
		{"E2", experiments.E2FailureFreeLatency},
		{"E3", experiments.E3Failover},
		{"E4", experiments.E4OptUndeliver},
		{"E5", experiments.E5Throughput},
		{"E6", experiments.E6EpochGC},
		{"E7", experiments.E7QuorumRule},
		{"E8", experiments.E8Batching},
		{"E9", experiments.E9ShardScaling},
		{"E10", experiments.E10BackendMatrix},
		{"E11", experiments.E11WorkloadMatrix},
		{"E12", experiments.E12AdaptiveBatching},
		{"E13", experiments.E13ReadFastPath},
		{"E14", experiments.E14Nemesis},
		{"E15", experiments.E15Recovery},
		{"A1", experiments.A1RelayStrategy},
		{"A2", experiments.A2UndoThriftiness},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	failed := false
	collected := []jsonResult{} // non-nil: -json writes [] rather than null when nothing ran
	for _, e := range suite {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t0 := time.Now()
		res, err := e.fn(cfg)
		took := time.Since(t0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			collected = append(collected, jsonResult{ID: e.id, Error: err.Error(), ElapsedMS: took.Milliseconds()})
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s took %v)\n\n", e.id, took.Round(time.Millisecond))
		collected = append(collected, jsonResult{
			ID:        res.ID,
			Title:     res.Title,
			Header:    res.Header,
			Rows:      res.Rows,
			Notes:     res.Notes,
			Latency:   res.Latency,
			ElapsedMS: took.Milliseconds(),
		})
	}
	fmt.Printf("suite finished in %v\n", time.Since(start).Round(time.Millisecond))
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(collected, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-bench: writing %s: %v\n", *jsonPath, err)
			failed = true
		}
	}
	if *requireLat {
		if problem := checkLatency(collected); problem != "" {
			fmt.Fprintf(os.Stderr, "oar-bench: latency schema gate: %s\n", problem)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
