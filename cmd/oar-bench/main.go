// Command oar-bench runs the reproduction experiment suite of DESIGN.md
// (E1–E9 and the ablations A1–A2) and prints one table per experiment —
// the data recorded in EXPERIMENTS.md.
//
//	oar-bench            # full suite (a few minutes)
//	oar-bench -quick     # scaled-down sweep (tens of seconds)
//	oar-bench -run E2,E5 # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		quick       = flag.Bool("quick", false, "scaled-down request counts and sweeps")
		only        = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		batchWindow = flag.Duration("batch-window", 0, "sequencer batch window for E8's batched rows (0 = adaptive)")
		maxBatch    = flag.Int("max-batch", 0, "max requests per ordering message for E8's batched rows (0 = default)")
		shards      = flag.Int("shards", 0, "largest shard count E9 sweeps to, in powers of two (0 = the 1/2/4 default)")
	)
	flag.Parse()
	cfg := experiments.Config{Quick: *quick, BatchWindow: *batchWindow, MaxBatch: *maxBatch, Shards: *shards}

	type exp struct {
		id string
		fn func(experiments.Config) (experiments.Result, error)
	}
	suite := []exp{
		{"E1", experiments.E1ExternalInconsistency},
		{"E2", experiments.E2FailureFreeLatency},
		{"E3", experiments.E3Failover},
		{"E4", experiments.E4OptUndeliver},
		{"E5", experiments.E5Throughput},
		{"E6", experiments.E6EpochGC},
		{"E7", experiments.E7QuorumRule},
		{"E8", experiments.E8Batching},
		{"E9", experiments.E9ShardScaling},
		{"A1", experiments.A1RelayStrategy},
		{"A2", experiments.A2UndoThriftiness},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	failed := false
	for _, e := range suite {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t0 := time.Now()
		res, err := e.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s took %v)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("suite finished in %v\n", time.Since(start).Round(time.Millisecond))
	if failed {
		return 1
	}
	return 0
}
