// Command oar-benchdiff compares two BENCH_*.json files written by
// oar-bench -json and fails (exit 1) when the newer run regressed beyond a
// tolerance band — the gate CI runs against the committed baseline so a
// performance regression fails the build instead of silently landing.
//
//	oar-bench -quick -json BENCH_new.json
//	oar-benchdiff -old bench/BENCH_baseline.json -new BENCH_new.json
//
// Cells are matched by experiment ID plus the latency sample's sorted label
// set; only cells present in both files are compared (use -allow-missing=false
// to also fail when a baseline cell disappeared, e.g. an experiment was
// dropped). A cell regresses when its throughput fell below 1-tol-throughput
// times the baseline, or its p99 rose above 1+tol-p99 times the baseline.
// The default bands are deliberately fat: single-run quick-mode numbers on a
// shared CI machine jitter by tens of percent, and this gate is for
// catastrophic regressions (a lost fast path, an accidental O(n²)), not for
// ±5% tracking — EXPERIMENTS.md records the precise numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// benchResult mirrors the jsonResult schema of oar-bench -json (the fields
// this tool consumes; unknown fields are ignored).
type benchResult struct {
	ID      string                      `json:"id"`
	Latency []experiments.LatencySample `json:"latency,omitempty"`
	Error   string                      `json:"error,omitempty"`
}

// cellKey identifies one measured cell across runs: the experiment ID plus
// the sample's labels in sorted key=value order.
func cellKey(id string, labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return id + "{" + strings.Join(parts, ",") + "}"
}

// load reads one BENCH_*.json file into a cell map.
func load(path string) (map[string]experiments.LatencySample, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []benchResult
	if err := json.Unmarshal(blob, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cells := make(map[string]experiments.LatencySample)
	for _, r := range results {
		if r.Error != "" {
			return nil, fmt.Errorf("%s: experiment %s recorded an error: %s", path, r.ID, r.Error)
		}
		for _, s := range r.Latency {
			cells[cellKey(r.ID, s.Labels)] = s
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("%s: no latency samples (is this an oar-bench -json file?)", path)
	}
	return cells, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		oldPath      = flag.String("old", "", "baseline BENCH_*.json (required)")
		newPath      = flag.String("new", "", "candidate BENCH_*.json (required)")
		tolThru      = flag.Float64("tol-throughput", 0.5, "allowed fractional throughput drop before failing")
		tolP99       = flag.Float64("tol-p99", 1.0, "allowed fractional p99 increase before failing")
		allowMissing = flag.Bool("allow-missing", true, "tolerate baseline cells absent from the candidate run")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "oar-benchdiff: -old and -new are required")
		flag.Usage()
		return 2
	}
	oldCells, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-benchdiff: %v\n", err)
		return 2
	}
	newCells, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-benchdiff: %v\n", err)
		return 2
	}

	d := diff(oldCells, newCells, *tolThru, *tolP99)
	fmt.Print(metrics.Table([]string{"cell", "req/s", "Δthru", "p99", "Δp99", "verdict"}, d.rows))
	fmt.Printf("\n%d cells compared (%d missing, %d new), tolerance: throughput -%.0f%%, p99 +%.0f%%\n",
		d.compared, d.missing, d.newOnly, 100**tolThru, 100**tolP99)

	if d.regressions > 0 {
		fmt.Fprintf(os.Stderr, "oar-benchdiff: %d cell(s) regressed beyond tolerance\n", d.regressions)
		return 1
	}
	if d.missing > 0 && !*allowMissing {
		fmt.Fprintf(os.Stderr, "oar-benchdiff: %d baseline cell(s) missing from the candidate run\n", d.missing)
		return 1
	}
	if d.compared == 0 {
		fmt.Fprintln(os.Stderr, "oar-benchdiff: no overlapping cells between the two runs")
		return 1
	}
	fmt.Println("oar-benchdiff: ok")
	return 0
}

// diffResult is the outcome of one comparison: the printable rows plus the
// counts the exit code is decided on.
type diffResult struct {
	rows        [][]string
	regressions int
	missing     int // baseline cells absent from the candidate
	newOnly     int // candidate cells absent from the baseline
	compared    int
}

// diff compares the two cell maps. Cells only in the baseline are reported
// as "missing" (fatal only with -allow-missing=false); cells only in the
// candidate — a freshly added experiment whose baseline hasn't been
// regenerated yet — are logged and skipped, never failed: a new measurement
// cannot regress against a number that was never taken.
func diff(oldCells, newCells map[string]experiments.LatencySample, tolThru, tolP99 float64) diffResult {
	keys := make([]string, 0, len(oldCells)+len(newCells))
	for k := range oldCells {
		keys = append(keys, k)
	}
	for k := range newCells {
		if _, ok := oldCells[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var d diffResult
	for _, k := range keys {
		o, inOld := oldCells[k]
		n, inNew := newCells[k]
		if !inNew {
			d.missing++
			d.rows = append(d.rows, []string{k, "-", "-", "-", "-", "missing"})
			continue
		}
		if !inOld {
			d.newOnly++
			d.rows = append(d.rows, []string{k, "-", "-", "-", "-", "new (no baseline, skipped)"})
			continue
		}
		d.compared++
		verdicts := []string{}
		thru := "-"
		if o.ReqPerSec > 0 && n.ReqPerSec > 0 {
			thru = fmt.Sprintf("%+.0f%%", 100*(n.ReqPerSec/o.ReqPerSec-1))
			if n.ReqPerSec < o.ReqPerSec*(1-tolThru) {
				verdicts = append(verdicts, "THROUGHPUT")
			}
		}
		p99 := "-"
		if o.P99NS > 0 && n.P99NS > 0 {
			p99 = fmt.Sprintf("%+.0f%%", 100*(float64(n.P99NS)/float64(o.P99NS)-1))
			if float64(n.P99NS) > float64(o.P99NS)*(1+tolP99) {
				verdicts = append(verdicts, "P99")
			}
		}
		verdict := "ok"
		if len(verdicts) > 0 {
			d.regressions++
			verdict = "REGRESSED: " + strings.Join(verdicts, "+")
		}
		d.rows = append(d.rows, []string{
			k,
			fmt.Sprintf("%.0f→%.0f", o.ReqPerSec, n.ReqPerSec),
			thru,
			fmt.Sprintf("%v→%v",
				time.Duration(o.P99NS).Round(time.Microsecond),
				time.Duration(n.P99NS).Round(time.Microsecond)),
			p99,
			verdict,
		})
	}
	return d
}
