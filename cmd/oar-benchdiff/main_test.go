package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func sample(reqPerSec float64, p99 int64) experiments.LatencySample {
	return experiments.LatencySample{ReqPerSec: reqPerSec, P99NS: p99}
}

// rowVerdict finds the row for cell k and returns its verdict column.
func rowVerdict(t *testing.T, rows [][]string, k string) string {
	t.Helper()
	for _, r := range rows {
		if r[0] == k {
			return r[len(r)-1]
		}
	}
	t.Fatalf("no row for cell %q", k)
	return ""
}

// TestDiffAsymmetricCells: the baseline has A+B, the candidate has B+C — the
// asymmetric case a freshly added experiment produces before its baseline is
// regenerated. A is missing (governed by -allow-missing), C is logged and
// skipped without ever counting as a regression, B is compared normally.
func TestDiffAsymmetricCells(t *testing.T) {
	oldCells := map[string]experiments.LatencySample{
		"E1{dist=uniform}": sample(1000, 100_000),
		"E2{dist=uniform}": sample(2000, 200_000),
	}
	newCells := map[string]experiments.LatencySample{
		"E2{dist=uniform}": sample(2100, 190_000),
		"E13{path=read}":   sample(5000, 50_000),
		"E13{path=write}":  sample(3000, 150_000),
	}
	d := diff(oldCells, newCells, 0.5, 1.0)
	if d.compared != 1 {
		t.Fatalf("compared = %d, want 1", d.compared)
	}
	if d.missing != 1 {
		t.Fatalf("missing = %d, want 1", d.missing)
	}
	if d.newOnly != 2 {
		t.Fatalf("newOnly = %d, want 2", d.newOnly)
	}
	if d.regressions != 0 {
		t.Fatalf("regressions = %d, want 0: new-only cells must never fail", d.regressions)
	}
	if len(d.rows) != 4 {
		t.Fatalf("rows = %d, want 4 (every cell from either run is logged)", len(d.rows))
	}
	if v := rowVerdict(t, d.rows, "E1{dist=uniform}"); v != "missing" {
		t.Fatalf("baseline-only verdict = %q, want %q", v, "missing")
	}
	if v := rowVerdict(t, d.rows, "E13{path=read}"); !strings.Contains(v, "new") || !strings.Contains(v, "skipped") {
		t.Fatalf("candidate-only verdict = %q, want a new/skipped marker", v)
	}
	if v := rowVerdict(t, d.rows, "E2{dist=uniform}"); v != "ok" {
		t.Fatalf("shared-cell verdict = %q, want %q", v, "ok")
	}
}

// TestDiffRegressionStillDetected: adding new-only handling must not loosen
// the gate on cells that do overlap.
func TestDiffRegressionStillDetected(t *testing.T) {
	oldCells := map[string]experiments.LatencySample{
		"E1{}": sample(1000, 100_000),
		"E2{}": sample(1000, 100_000),
	}
	newCells := map[string]experiments.LatencySample{
		"E1{}": sample(400, 100_000),  // throughput -60% > 50% tolerance
		"E2{}": sample(1000, 250_000), // p99 +150% > 100% tolerance
		"E3{}": sample(1, 1_000_000_000),
	}
	d := diff(oldCells, newCells, 0.5, 1.0)
	if d.regressions != 2 {
		t.Fatalf("regressions = %d, want 2", d.regressions)
	}
	if d.newOnly != 1 {
		t.Fatalf("newOnly = %d, want 1", d.newOnly)
	}
	if v := rowVerdict(t, d.rows, "E1{}"); !strings.Contains(v, "THROUGHPUT") {
		t.Fatalf("E1 verdict = %q, want THROUGHPUT regression", v)
	}
	if v := rowVerdict(t, d.rows, "E2{}"); !strings.Contains(v, "P99") {
		t.Fatalf("E2 verdict = %q, want P99 regression", v)
	}
	// The slow new-only cell never regresses: there is no baseline to lose to.
	if v := rowVerdict(t, d.rows, "E3{}"); strings.Contains(v, "REGRESSED") {
		t.Fatalf("new-only cell regressed: %q", v)
	}
}
