// Command oar-client talks to a TCP-deployed OAR cluster. Commands come
// from the command line (one invocation) or stdin (one command per line);
// each reply is printed with its total-order position, endorsement weight
// and end-to-end response time.
//
//	oar-client -servers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 set k v
//	echo -e "set a 1\nget a" | oar-client -servers ...
//
// Flags: -servers (rank order), -index (unique per concurrent client
// process), -group (the ordering group the listed servers serve), -timeout
// (per request). For sustained load and latency percentiles use
// oar-loadgen instead.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

import oar "repro"

func main() {
	os.Exit(run())
}

func run() int {
	var (
		servers = flag.String("servers", "", "comma-separated replica addresses (required)")
		index   = flag.Int("index", 0, "client index (unique per concurrent client process)")
		group   = flag.Int("group", 0, "ordering group (shard) the listed servers belong to")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()
	if *servers == "" {
		fmt.Fprintln(os.Stderr, "oar-client: -servers is required")
		flag.Usage()
		return 2
	}

	cli, err := oar.NewTCPClient(oar.ClientOptions{
		Servers:     strings.Split(*servers, ","),
		ClientIndex: *index,
		GroupID:     *group,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-client: %v\n", err)
		return 1
	}
	defer cli.Close()

	invoke := func(cmd string) bool {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		t0 := time.Now()
		reply, err := cli.Invoke(ctx, []byte(cmd))
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-client: %q: %v\n", cmd, err)
			return false
		}
		fmt.Printf("%s\t(pos %d, weight %d, %v)\n",
			reply.Result, reply.Pos, reply.Endorsers, time.Since(t0).Round(time.Microsecond))
		return true
	}

	if args := flag.Args(); len(args) > 0 {
		if !invoke(strings.Join(args, " ")) {
			return 1
		}
		return 0
	}
	scanner := bufio.NewScanner(os.Stdin)
	ok := true
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ok = invoke(line) && ok
	}
	if !ok {
		return 1
	}
	return 0
}
